//! Timed workload execution — the measurement harness behind every figure.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use hsd_query::{Query, QueryKind, Workload};
use hsd_types::Result;

use crate::database::HybridDatabase;
use crate::recorder::StatisticsRecorder;

/// Per-statement hook invoked by [`WorkloadRunner::run_observed`] after
/// each executed query.
type AfterEachHook<'a> = &'a mut dyn FnMut(&HybridDatabase, &Query) -> Result<()>;

/// Outcome of running a workload.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total wall time.
    pub total: Duration,
    /// Wall time per query kind.
    pub by_kind: BTreeMap<&'static str, Duration>,
    /// Number of executed queries.
    pub queries: usize,
    /// Per-query durations (in execution order) when requested.
    pub per_query: Option<Vec<Duration>>,
}

impl RunReport {
    /// Total runtime in fractional milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total.as_secs_f64() * 1e3
    }
}

/// Executes workloads with timing, optionally recording extended statistics.
#[derive(Debug, Default)]
pub struct WorkloadRunner {
    /// Collect per-query durations (needed by the estimation-accuracy
    /// experiments; slight overhead).
    pub collect_per_query: bool,
}

impl WorkloadRunner {
    /// Runner with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run every query, returning the timing report.
    pub fn run(&self, db: &HybridDatabase, workload: &Workload) -> Result<RunReport> {
        self.run_inner(db, workload, None, None)
    }

    /// Run every query while feeding the statistics recorder (the online
    /// mode's combined execute-and-observe loop).
    pub fn run_recorded(
        &self,
        db: &HybridDatabase,
        workload: &Workload,
        recorder: &mut StatisticsRecorder,
    ) -> Result<RunReport> {
        self.run_inner(db, workload, Some(recorder), None)
    }

    /// Run every query, invoking `after_each` once a statement has executed
    /// — the hook an online advisor (or any maintenance scheduler) uses to
    /// observe the stream and apply merges/adaptations between statements.
    /// The hook's own runtime counts toward `total` (maintenance is part of
    /// the policy's cost) but not toward the per-kind or per-query splits.
    pub fn run_observed<F>(
        &self,
        db: &HybridDatabase,
        workload: &Workload,
        mut after_each: F,
    ) -> Result<RunReport>
    where
        F: FnMut(&HybridDatabase, &Query) -> Result<()>,
    {
        self.run_inner(db, workload, None, Some(&mut after_each))
    }

    fn run_inner(
        &self,
        db: &HybridDatabase,
        workload: &Workload,
        mut recorder: Option<&mut StatisticsRecorder>,
        mut after_each: Option<AfterEachHook<'_>>,
    ) -> Result<RunReport> {
        let mut by_kind: BTreeMap<&'static str, Duration> = BTreeMap::new();
        let mut per_query = self
            .collect_per_query
            .then(|| Vec::with_capacity(workload.len()));
        let started = Instant::now();
        for query in &workload.queries {
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(db, query);
            }
            let q_start = Instant::now();
            db.execute(query)?;
            let elapsed = q_start.elapsed();
            *by_kind.entry(kind_name(query)).or_insert(Duration::ZERO) += elapsed;
            if let Some(v) = per_query.as_mut() {
                v.push(elapsed);
            }
            if let Some(hook) = after_each.as_mut() {
                hook(db, query)?;
            }
        }
        Ok(RunReport {
            total: started.elapsed(),
            by_kind,
            queries: workload.len(),
            per_query,
        })
    }

    /// Time a single query (median over `repeats` runs; read-only queries
    /// only, since repetition re-executes).
    pub fn time_query(
        &self,
        db: &HybridDatabase,
        query: &Query,
        repeats: usize,
    ) -> Result<Duration> {
        let mut samples = Vec::with_capacity(repeats.max(1));
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            db.execute(query)?;
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        Ok(samples[samples.len() / 2])
    }
}

fn kind_name(q: &Query) -> &'static str {
    match q.kind() {
        QueryKind::Aggregation => "aggregation",
        QueryKind::AggregationJoin => "aggregation+join",
        QueryKind::Select => "select",
        QueryKind::Insert => "insert",
        QueryKind::Update => "update",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_query::{AggFunc, AggregateQuery, InsertQuery};
    use hsd_storage::StoreKind;
    use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};

    fn db() -> HybridDatabase {
        let db = HybridDatabase::new();
        db.create_single(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::BigInt),
                    ColumnDef::new("v", ColumnType::Double),
                ],
                vec![0],
            )
            .unwrap(),
            StoreKind::Column,
        )
        .unwrap();
        db.bulk_load(
            "t",
            (0..100).map(|i| vec![Value::BigInt(i), Value::Double(i as f64)]),
        )
        .unwrap();
        db
    }

    fn workload() -> Workload {
        let mut w = Workload::new();
        w.push(Query::Aggregate(AggregateQuery::simple(
            "t",
            AggFunc::Sum,
            1,
        )));
        w.push(Query::Insert(InsertQuery {
            table: "t".into(),
            rows: vec![vec![Value::BigInt(1000), Value::Double(0.0)]],
        }));
        w
    }

    #[test]
    fn run_reports_totals() {
        let db = db();
        let report = WorkloadRunner::new().run(&db, &workload()).unwrap();
        assert_eq!(report.queries, 2);
        assert!(report.total > Duration::ZERO);
        assert!(report.by_kind.contains_key("aggregation"));
        assert!(report.by_kind.contains_key("insert"));
        assert!(report.per_query.is_none());
        assert!(report.total_ms() > 0.0);
    }

    #[test]
    fn per_query_durations() {
        let db = db();
        let runner = WorkloadRunner {
            collect_per_query: true,
        };
        let report = runner.run(&db, &workload()).unwrap();
        assert_eq!(report.per_query.unwrap().len(), 2);
    }

    #[test]
    fn recorded_run_populates_stats() {
        let db = db();
        let mut rec = StatisticsRecorder::new();
        WorkloadRunner::new()
            .run_recorded(&db, &workload(), &mut rec)
            .unwrap();
        assert_eq!(rec.stats().total_statements, 2);
        assert_eq!(rec.stats().table("t").unwrap().inserts, 1);
        assert_eq!(rec.stats().table("t").unwrap().aggregations, 1);
    }

    #[test]
    fn time_query_returns_median() {
        let db = db();
        let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        let d = WorkloadRunner::new().time_query(&db, &q, 5).unwrap();
        assert!(d > Duration::ZERO);
    }
}
