//! Figure 7(a): recommendation quality on a **single table** — workload
//! runtime on RS only, CS only, and the advisor-recommended store, for OLAP
//! fractions 0 %–5 % of a 500-query mixed workload.

use std::collections::BTreeMap;
use std::sync::Arc;

use hsd_bench::{build_db, calibrated_model, fmt_s, print_series, scaled_rows, wide_spec};
use hsd_catalog::TablePlacement;
use hsd_core::StorageAdvisor;
use hsd_engine::WorkloadRunner;
use hsd_query::{MixedWorkloadConfig, WorkloadGenerator};
use hsd_storage::StoreKind;

fn main() -> hsd_types::Result<()> {
    let model = calibrated_model()?;
    let advisor = StorageAdvisor::new(model);
    let runner = WorkloadRunner::new();
    let n = scaled_rows(10_000_000);
    let queries = 500; // paper count; only the data scales
    let spec = wide_spec("t", n, 0xF17A);
    let schema = Arc::new(spec.schema()?);

    let mut rows_out = Vec::new();
    let mut hits = 0usize;
    let fractions = [0.0, 0.0125, 0.025, 0.0375, 0.05];
    for frac in fractions {
        let cfg = MixedWorkloadConfig {
            queries,
            olap_fraction: frac,
            oltp_insert_share: 0.4,
            oltp_update_share: 0.4,
            seed: 0x7A + (frac * 1e4) as u64,
            ..Default::default()
        };
        let workload = WorkloadGenerator::single_table(&spec, &cfg);
        let mut runtimes: BTreeMap<StoreKind, f64> = BTreeMap::new();
        let mut stats_snapshot = None;
        for store in StoreKind::BOTH {
            let db = build_db(&spec, store)?;
            if stats_snapshot.is_none() {
                stats_snapshot = Some(db.catalog().entry_by_name("t")?.stats.clone());
            }
            let report = runner.run(&db, &workload)?;
            runtimes.insert(store, report.total.as_secs_f64());
        }
        let mut stats = BTreeMap::new();
        stats.insert("t".to_string(), stats_snapshot.expect("captured"));
        let rec =
            advisor.recommend_offline(std::slice::from_ref(&schema), &stats, &workload, false)?;
        let recommended = match rec.layout.placement("t") {
            TablePlacement::Single(s) => s,
            other => panic!("table-level run must yield single store, got {other:?}"),
        };
        let rs = runtimes[&StoreKind::Row];
        let cs = runtimes[&StoreKind::Column];
        let adv = runtimes[&recommended];
        let optimal = if rs <= cs {
            StoreKind::Row
        } else {
            StoreKind::Column
        };
        if recommended == optimal {
            hits += 1;
        }
        rows_out.push(vec![
            format!("{:.2}%", frac * 100.0),
            fmt_s(rs),
            fmt_s(cs),
            fmt_s(adv),
            recommended.to_string(),
            optimal.to_string(),
        ]);
    }
    print_series(
        &format!(
            "Figure 7(a): single-table recommendation quality ({n} tuples, {queries} queries)"
        ),
        &[
            "OLAP frac",
            "RS only (s)",
            "CS only (s)",
            "advisor (s)",
            "rec",
            "optimal",
        ],
        &rows_out,
    );
    println!(
        "advisor picked the optimal store in {hits}/{} workloads",
        fractions.len()
    );
    Ok(())
}
