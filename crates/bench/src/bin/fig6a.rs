//! Figure 6(a): accuracy of the runtime estimation vs. **data scale**.
//!
//! Paper setup: a 30-attribute table at 2m–20m tuples, one constant
//! aggregation query; plotted are row-/column-store estimates vs. actual
//! runtimes, both trending linearly.

use std::collections::BTreeMap;

use hsd_bench::{build_db, calibrated_model, ctx_of, fmt_ms, print_series, scaled_rows, wide_spec};
use hsd_core::estimator::estimate_query;
use hsd_engine::WorkloadRunner;
use hsd_query::{AggFunc, AggregateQuery, Query};
use hsd_storage::StoreKind;

fn main() -> hsd_types::Result<()> {
    let model = calibrated_model()?;
    let runner = WorkloadRunner::new();
    let mut rows_out = Vec::new();
    let mut errs: BTreeMap<StoreKind, Vec<f64>> = BTreeMap::new();
    for millions in [2usize, 6, 10, 14, 20] {
        let n = scaled_rows(millions * 1_000_000);
        let spec = wide_spec("t", n, 0xF16A);
        let query = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, spec.kf_col(0)));
        let mut line = vec![n.to_string()];
        for store in StoreKind::BOTH {
            let db = build_db(&spec, store)?;
            let ctx = ctx_of(&db);
            let assignment: BTreeMap<String, StoreKind> =
                [("t".to_string(), store)].into_iter().collect();
            let est = estimate_query(&model, &ctx, &assignment, &query);
            let run = runner.time_query(&db, &query, 3)?.as_secs_f64() * 1e3;
            errs.entry(store).or_default().push((est - run).abs() / run);
            line.push(fmt_ms(est));
            line.push(fmt_ms(run));
        }
        rows_out.push(line);
    }
    print_series(
        "Figure 6(a): estimation accuracy vs data scale (SUM over one Double attribute)",
        &[
            "tuples",
            "RS est (ms)",
            "RS run (ms)",
            "CS est (ms)",
            "CS run (ms)",
        ],
        &rows_out,
    );
    for (store, e) in errs {
        let mean = e.iter().sum::<f64>() / e.len() as f64;
        println!(
            "mean relative estimation error [{store}]: {:.1} %",
            mean * 100.0
        );
    }
    Ok(())
}
