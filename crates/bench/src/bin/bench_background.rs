//! Background-merge ablation: query-latency distribution under three
//! maintenance policies at **equal total merge work**, recorded as
//! `BENCH_background.json`.
//!
//! A column table accumulates a delta tail; a serving loop then streams
//! point selects and full scans while each policy deals (or does not deal)
//! with the tail:
//!
//! * **never-merge** — the tail stays; scans pay the degradation forever.
//! * **synchronous full merge** — `mover::merge_delta` runs inline at the
//!   scheduled point: one statement absorbs the whole O(rows) remap pause.
//! * **background worker** — the same merge is enqueued on a
//!   [`hsd_engine::MaintenanceWorker`], which drains one remap-budgeted
//!   slice between statements, its budget paced by observed query latency.
//!
//! All three policies serve the identical statement stream from the
//! identical starting state, and the two merging policies fold the same
//! tail (asserted), so total merge work is equal — only its dicing
//! differs. The claim is that the worker bounds the **maximum
//! query-visible pause** well below the synchronous full-merge pause.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_background`
//! (`-- --smoke` for the small CI configuration, `-- --threaded` to drive
//! the merge from a `std::thread` worker against a shared database — the
//! multi-core path; measurements on a 1-vCPU container then mostly show
//! lock handoff).

use std::time::Instant;

use hsd_engine::{
    mover, BackgroundWorker, HybridDatabase, MaintenanceWorker, MergeConfig, MergePartition,
    PacerConfig, SharedDatabase, WorkerConfig,
};
use hsd_query::{AggFunc, AggregateQuery, Query, SelectQuery, TableSpec, UpdateQuery};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{Json, Value};

struct Scale {
    /// Rows of the serving table (the remap cost of one full merge).
    rows: usize,
    /// Fresh-value updates growing the tail before serving starts.
    tail_updates: usize,
    /// Statements of the serving stream.
    statements: usize,
    /// One full scan per this many statements (the rest are point selects).
    scan_every: usize,
    smoke: bool,
    threaded: bool,
}

impl Scale {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        let threaded = std::env::args().any(|a| a == "--threaded");
        if smoke {
            Scale {
                rows: 60_000,
                tail_updates: 2_000,
                statements: 600,
                scan_every: 10,
                smoke: true,
                threaded,
            }
        } else {
            Scale {
                rows: 200_000,
                tail_updates: 6_000,
                statements: 1_500,
                scan_every: 10,
                smoke: false,
                threaded,
            }
        }
    }
}

fn spec(rows: usize) -> TableSpec {
    TableSpec::paper_wide("b", rows, 0x6B41)
}

/// Columns the tail grows on: several low-cardinality group columns, so
/// the eventual merge remaps several full code vectors — remap-dominated,
/// the pause shape the worker is supposed to dice up.
const TAILED_COLS: usize = 4;

/// Build the table and grow its tail — identical starting state for every
/// policy.
fn prepared_db(s: &TableSpec, tail_updates: usize) -> HybridDatabase {
    let db = HybridDatabase::new();
    db.create_single(s.schema().expect("schema"), StoreKind::Column)
        .expect("create");
    db.bulk_load(&s.name, s.rows()).expect("load");
    db.set_merge_config(MergeConfig::disabled());
    for i in 0..tail_updates {
        let sets = (0..TAILED_COLS)
            .map(|c| {
                (
                    s.grp_col(c),
                    Value::Int(1_000 + (i * TAILED_COLS + c) as i32),
                )
            })
            .collect();
        db.execute(&Query::Update(UpdateQuery {
            table: s.name.clone(),
            sets,
            filter: vec![ColRange::eq(0, Value::BigInt(((i * 31) % s.rows) as i64))],
        }))
        .expect("update");
    }
    db
}

/// The serving stream: mostly point selects with a full scan of the tailed
/// group column every `scan_every` statements.
fn statement(s: &TableSpec, i: usize, scan_every: usize) -> Query {
    if i % scan_every == scan_every - 1 {
        Query::Aggregate(AggregateQuery::simple(
            &s.name,
            AggFunc::Count,
            s.grp_col(0),
        ))
    } else {
        Query::Select(SelectQuery {
            table: s.name.clone(),
            columns: Some(vec![0, s.kf_col(0)]),
            filter: vec![ColRange::eq(0, Value::BigInt(((i * 17) % s.rows) as i64))],
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    Never,
    Synchronous,
    Background,
}

struct PolicyReport {
    name: &'static str,
    latencies_ms: Vec<f64>,
    merged_entries: usize,
    slices: u64,
    total_ms: f64,
}

fn pacer() -> PacerConfig {
    PacerConfig {
        initial_budget: 4_096,
        min_budget: 1_024,
        // Keep the ceiling tight relative to the table: the max
        // query-visible pause is one slice, and the claim under test is
        // that it stays far below the full-merge pause.
        max_budget: 16_384,
        ..Default::default()
    }
}

/// Serve the stream under one policy, measuring per-statement latency
/// *including* whatever maintenance work rides on that statement boundary
/// — the query-visible pause. The merge is scheduled after 10% of the
/// stream (all policies at the same point).
fn run_policy(scale: &Scale, s: &TableSpec, policy: Policy) -> PolicyReport {
    let db = prepared_db(s, scale.tail_updates);
    let merge_at = scale.statements / 10;
    let mut worker = MaintenanceWorker::new(WorkerConfig {
        pacer: pacer(),
        ..WorkerConfig::default()
    });
    let mut latencies = Vec::with_capacity(scale.statements);
    let mut merged = 0usize;
    let started = Instant::now();
    for i in 0..scale.statements {
        let q = statement(s, i, scale.scan_every);
        let t0 = Instant::now();
        db.execute(&q).expect("execute");
        if i == merge_at {
            match policy {
                Policy::Never => {}
                Policy::Synchronous => {
                    merged += mover::merge_delta(&db, &s.name).expect("merge");
                }
                Policy::Background => {
                    worker.enqueue(&s.name, MergePartition::Whole);
                }
            }
        }
        if policy == Policy::Background {
            if let Some(report) = worker.tick(&db).expect("tick") {
                merged += report.progress.entries_folded;
            }
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        worker.observe_query_latency(ms);
        latencies.push(ms);
    }
    PolicyReport {
        name: match policy {
            Policy::Never => "never-merge",
            Policy::Synchronous => "synchronous-full-merge",
            Policy::Background => "background-worker",
        },
        latencies_ms: latencies,
        merged_entries: merged,
        slices: worker.stats().slices,
        total_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// The background policy on the threaded worker: the serving loop executes
/// statements directly against the shared database while the worker thread
/// slices concurrently — readers pin epochs, only same-table writes queue
/// behind the slice's brief latch holds.
fn run_threaded(scale: &Scale, s: &TableSpec) -> PolicyReport {
    let db = prepared_db(s, scale.tail_updates);
    let shared: SharedDatabase = std::sync::Arc::new(db);
    let worker = BackgroundWorker::spawn(
        shared.clone(),
        WorkerConfig {
            pacer: pacer(),
            ..WorkerConfig::default()
        },
        std::time::Duration::from_micros(200),
    );
    let merge_at = scale.statements / 10;
    let mut latencies = Vec::with_capacity(scale.statements);
    let started = Instant::now();
    for i in 0..scale.statements {
        let q = statement(s, i, scale.scan_every);
        let t0 = Instant::now();
        shared.execute(&q).expect("execute");
        if i == merge_at {
            worker.enqueue(&s.name, MergePartition::Whole);
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        worker.observe_query_latency(ms);
        latencies.push(ms);
    }
    let stats = worker.stop(true);
    PolicyReport {
        name: "background-worker-threaded",
        latencies_ms: latencies,
        merged_entries: stats.entries_folded as usize,
        slices: stats.slices,
        total_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

fn policy_json(r: &PolicyReport) -> Json {
    let mut sorted = r.latencies_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Json::obj([
        ("policy", Json::Str(r.name.into())),
        ("max_pause_ms", Json::Num(*sorted.last().expect("nonempty"))),
        ("p99_ms", Json::Num(quantile(&sorted, 0.99))),
        ("p50_ms", Json::Num(quantile(&sorted, 0.50))),
        ("total_ms", Json::Num(r.total_ms)),
        ("merged_entries", Json::Int(r.merged_entries as i64)),
        ("slices", Json::Int(r.slices as i64)),
    ])
}

fn max_ms(r: &PolicyReport) -> f64 {
    r.latencies_ms.iter().copied().fold(0.0, f64::max)
}

fn main() {
    let scale = Scale::from_args();
    let s = spec(scale.rows);
    let never = run_policy(&scale, &s, Policy::Never);
    let sync = run_policy(&scale, &s, Policy::Synchronous);
    let background = if scale.threaded {
        run_threaded(&scale, &s)
    } else {
        run_policy(&scale, &s, Policy::Background)
    };
    assert_eq!(never.merged_entries, 0);
    assert_eq!(
        sync.merged_entries, background.merged_entries,
        "equal total merge work: both policies fold the same tail"
    );
    assert!(background.slices > 1, "the worker must actually slice");

    let sync_max = max_ms(&sync);
    let bg_max = max_ms(&background);
    let reduction = sync_max / bg_max;
    // The worker's slices must keep the worst statement well below the
    // stop-the-world pause (2x margin absorbs shared-runner noise).
    let pass = bg_max * 2.0 < sync_max;
    for r in [&never, &sync, &background] {
        let mut sorted = r.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        eprintln!(
            "[bench_background] {:<26} max {:8.2} ms  p99 {:7.3} ms  p50 {:7.3} ms  \
             merged {:5}  slices {:3}  total {:8.1} ms",
            r.name,
            sorted.last().expect("nonempty"),
            quantile(&sorted, 0.99),
            quantile(&sorted, 0.50),
            r.merged_entries,
            r.slices,
            r.total_ms,
        );
    }
    eprintln!(
        "[bench_background] max query-visible pause: background {bg_max:.2} ms vs \
         synchronous {sync_max:.2} ms ({reduction:.1}x reduction) -> {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("benchmark", Json::Str("background_merge_worker".into())),
        ("smoke", Json::Bool(scale.smoke)),
        ("threaded", Json::Bool(scale.threaded)),
        ("rows", Json::Int(scale.rows as i64)),
        ("tail_entries", Json::Int(sync.merged_entries as i64)),
        ("statements", Json::Int(scale.statements as i64)),
        (
            "policies",
            Json::Arr(vec![
                policy_json(&never),
                policy_json(&sync),
                policy_json(&background),
            ]),
        ),
        ("pause_reduction", hsd_bench::ratio_json(sync_max, bg_max)),
        ("pass", Json::Bool(pass)),
    ]);
    std::fs::write("BENCH_background.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_background.json");
    eprintln!("[bench_background] wrote BENCH_background.json");
    if !pass {
        std::process::exit(1);
    }
}
