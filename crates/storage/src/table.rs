//! Store-agnostic table facade.

use std::sync::Arc;

use hsd_types::{ColumnIdx, Result, TableSchema, Value};

use crate::column_store::ColumnTable;
use crate::predicate::{ColRange, RowSel};
use crate::row_store::RowTable;
use crate::selvec::SelVec;

/// Which of the two stores a table (or partition) lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StoreKind {
    /// Row-oriented storage.
    Row,
    /// Column-oriented storage.
    Column,
}

impl StoreKind {
    /// Both stores, row first (stable order for enumerations).
    pub const BOTH: [StoreKind; 2] = [StoreKind::Row, StoreKind::Column];

    /// The other store.
    pub fn other(self) -> StoreKind {
        match self {
            StoreKind::Row => StoreKind::Column,
            StoreKind::Column => StoreKind::Row,
        }
    }

    /// Short name used in reports ("RS" / "CS"), matching the paper.
    pub fn abbrev(self) -> &'static str {
        match self {
            StoreKind::Row => "RS",
            StoreKind::Column => "CS",
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Materialized primary-key value, used by both stores' uniqueness indexes.
pub type PkKey = Box<[Value]>;

/// Extract the primary-key values of `row` under `schema`.
pub fn pk_key_of(schema: &TableSchema, row: &[Value]) -> PkKey {
    schema.primary_key.iter().map(|&i| row[i].clone()).collect()
}

/// A table stored in either the row or the column store, with a uniform
/// interface for the execution engine.
#[derive(Debug, Clone)]
pub enum Table {
    /// Row-store resident table.
    Row(RowTable),
    /// Column-store resident table.
    Column(ColumnTable),
}

impl Table {
    /// Create an empty table in the given store.
    pub fn new(schema: Arc<TableSchema>, store: StoreKind) -> Self {
        match store {
            StoreKind::Row => Table::Row(RowTable::new(schema)),
            StoreKind::Column => Table::Column(ColumnTable::new(schema)),
        }
    }

    /// Which store this table lives in.
    pub fn store_kind(&self) -> StoreKind {
        match self {
            Table::Row(_) => StoreKind::Row,
            Table::Column(_) => StoreKind::Column,
        }
    }

    /// Table schema.
    pub fn schema(&self) -> &Arc<TableSchema> {
        match self {
            Table::Row(t) => t.schema(),
            Table::Column(t) => t.schema(),
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        match self {
            Table::Row(t) => t.row_count(),
            Table::Column(t) => t.row_count(),
        }
    }

    /// Insert a row.
    pub fn insert(&mut self, row: &[Value]) -> Result<u32> {
        match self {
            Table::Row(t) => t.insert(row),
            Table::Column(t) => t.insert(row),
        }
    }

    /// Borrow a single attribute.
    #[inline]
    pub fn value_at(&self, idx: u32, col: ColumnIdx) -> &Value {
        match self {
            Table::Row(t) => t.value_at(idx, col),
            Table::Column(t) => t.value_at(idx, col),
        }
    }

    /// Materialize the full tuple at `idx`.
    pub fn row(&self, idx: u32) -> Vec<Value> {
        match self {
            Table::Row(t) => t.row(idx).to_vec(),
            Table::Column(t) => t.row(idx),
        }
    }

    /// Find a row by primary key.
    pub fn point_lookup(&self, key: &[Value]) -> Option<u32> {
        match self {
            Table::Row(t) => t.point_lookup(key),
            Table::Column(t) => t.point_lookup(key),
        }
    }

    /// Row indexes matching all ranges (ascending).
    pub fn filter_rows(&self, ranges: &[ColRange]) -> Vec<u32> {
        match self {
            Table::Row(t) => t.filter_rows(ranges),
            Table::Column(t) => t.filter_rows(ranges),
        }
    }

    /// The selection matching all ranges as a bitmap (the engine's batched
    /// scan pipeline; see [`crate::selvec::SelVec`]).
    pub fn filter_selvec(&self, ranges: &[ColRange]) -> SelVec {
        match self {
            Table::Row(t) => t.filter_selvec(ranges),
            Table::Column(t) => t.filter_selvec(ranges),
        }
    }

    /// Visit numeric values of `col` for the rows selected by `sel`
    /// (`None` = all rows).
    pub fn for_each_numeric_sel(&self, col: ColumnIdx, sel: Option<&SelVec>, f: impl FnMut(f64)) {
        match self {
            Table::Row(t) => t.for_each_numeric_sel(col, sel, f),
            Table::Column(t) => t.for_each_numeric_sel(col, sel, f),
        }
    }

    /// Update rows with the given assignments.
    pub fn update_rows(&mut self, rows: &[u32], sets: &[(ColumnIdx, Value)]) -> Result<usize> {
        match self {
            Table::Row(t) => t.update_rows(rows, sets),
            Table::Column(t) => t.update_rows(rows, sets),
        }
    }

    /// Visit numeric values of `col` over `sel`.
    pub fn for_each_numeric(&self, col: ColumnIdx, sel: RowSel<'_>, f: impl FnMut(f64)) {
        match self {
            Table::Row(t) => t.for_each_numeric(col, sel, f),
            Table::Column(t) => t.for_each_numeric(col, sel, f),
        }
    }

    /// Visit values of `col` over `sel`.
    pub fn for_each_value(&self, col: ColumnIdx, sel: RowSel<'_>, f: impl FnMut(&Value)) {
        match self {
            Table::Row(t) => t.for_each_value(col, sel, f),
            Table::Column(t) => t.for_each_value(col, sel, f),
        }
    }

    /// Materialize selected rows with optional projection.
    pub fn collect_rows(&self, sel: RowSel<'_>, cols: Option<&[ColumnIdx]>) -> Vec<Vec<Value>> {
        match self {
            Table::Row(t) => t.collect_rows(sel, cols),
            Table::Column(t) => t.collect_rows(sel, cols),
        }
    }

    /// Accumulated dictionary-tail entries (0 for row-store tables, which
    /// have no delta region).
    pub fn delta_tail(&self) -> usize {
        match self {
            Table::Row(_) => 0,
            Table::Column(t) => t.tail_total(),
        }
    }

    /// Run the full delta merge (no-op for row-store tables); returns how
    /// many tail entries were folded in.
    pub fn compact_delta(&mut self) -> usize {
        match self {
            Table::Row(_) => 0,
            Table::Column(t) => {
                let tail = t.tail_total();
                t.compact();
                tail
            }
        }
    }

    /// Advance the incremental delta merge by at most `budget_rows`
    /// remapped code-vector entries (see
    /// [`crate::column_store::ColumnTable::compact_step`]). Row-store tables
    /// have no delta region and report `done` immediately.
    pub fn compact_delta_step(&mut self, budget_rows: usize) -> crate::MergeProgress {
        match self {
            Table::Row(_) => crate::MergeProgress {
                done: true,
                ..Default::default()
            },
            Table::Column(t) => t.compact_step(budget_rows),
        }
    }

    /// Compute merge plans for every tailed column through `&self` (empty
    /// for row-store tables; see [`crate::ColumnTable::plan_compact`]).
    pub fn plan_delta_merge(&self) -> Vec<(ColumnIdx, crate::MergePlan)> {
        match self {
            Table::Row(_) => Vec::new(),
            Table::Column(t) => t.plan_compact(),
        }
    }

    /// Adopt previously computed merge plans (no-op for row-store tables);
    /// returns how many installed.
    pub fn install_delta_plans(&mut self, plans: Vec<(ColumnIdx, crate::MergePlan)>) -> usize {
        match self {
            Table::Row(_) => 0,
            Table::Column(t) => t.install_plans(plans),
        }
    }

    /// Whether an incremental delta merge is in flight (always `false` for
    /// row-store tables).
    pub fn merge_in_progress(&self) -> bool {
        match self {
            Table::Row(_) => false,
            Table::Column(t) => t.merge_in_progress(),
        }
    }

    /// The table's merge epoch (0 for row-store tables): increases at every
    /// completed dictionary handoff, so observers can detect that a merge
    /// finished between two looks.
    pub fn merge_epoch(&self) -> u64 {
        match self {
            Table::Row(_) => 0,
            Table::Column(t) => t.merge_epoch(),
        }
    }

    /// Abandon any in-flight incremental delta merge (no-op for row-store
    /// tables); returns how many columns had one.
    pub fn cancel_delta_merge(&mut self) -> usize {
        match self {
            Table::Row(_) => 0,
            Table::Column(t) => t.cancel_merge(),
        }
    }

    /// Count distinct values of `col`.
    pub fn distinct_count(&self, col: ColumnIdx) -> usize {
        match self {
            Table::Row(t) => t.distinct_count(col),
            Table::Column(t) => t.distinct_count(col),
        }
    }

    /// Approximate heap bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Table::Row(t) => t.memory_bytes(),
            Table::Column(t) => t.memory_bytes(),
        }
    }

    /// Drain into raw rows (for data movement between stores).
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        match self {
            Table::Row(t) => t.into_rows(),
            Table::Column(t) => t.into_rows(),
        }
    }

    /// Bulk-build a table in `store` from rows.
    pub fn from_rows<I>(schema: Arc<TableSchema>, store: StoreKind, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut table = Table::new(schema, store);
        for row in rows {
            table.insert(&row)?;
        }
        if let Table::Column(t) = &mut table {
            t.compact();
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_types::{ColumnDef, ColumnType};

    fn schema() -> Arc<TableSchema> {
        Arc::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Integer),
                    ColumnDef::new("v", ColumnType::Double),
                ],
                vec![0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn store_kind_helpers() {
        assert_eq!(StoreKind::Row.other(), StoreKind::Column);
        assert_eq!(StoreKind::Column.abbrev(), "CS");
        assert_eq!(StoreKind::Row.to_string(), "RS");
    }

    #[test]
    fn both_stores_agree_on_basic_ops() {
        for store in StoreKind::BOTH {
            let mut t = Table::new(schema(), store);
            assert_eq!(t.store_kind(), store);
            for i in 0..5 {
                t.insert(&[Value::Int(i), Value::Double(i as f64)]).unwrap();
            }
            assert_eq!(t.row_count(), 5);
            assert_eq!(t.row(2), vec![Value::Int(2), Value::Double(2.0)]);
            assert_eq!(t.point_lookup(&[Value::Int(4)]), Some(4));
            let hits = t.filter_rows(&[ColRange::ge(1, Value::Double(3.0))]);
            assert_eq!(hits, vec![3, 4]);
            t.update_rows(&[0], &[(1, Value::Double(10.0))]).unwrap();
            assert_eq!(t.value_at(0, 1), &Value::Double(10.0));
            let mut sum = 0.0;
            t.for_each_numeric(1, RowSel::All, |v| sum += v);
            assert_eq!(sum, 10.0 + 1.0 + 2.0 + 3.0 + 4.0);
        }
    }

    #[test]
    fn move_between_stores_preserves_rows() {
        let mut t = Table::new(schema(), StoreKind::Row);
        for i in 0..8 {
            t.insert(&[Value::Int(i), Value::Double(i as f64 * 2.0)])
                .unwrap();
        }
        let rows = t.into_rows();
        let moved = Table::from_rows(schema(), StoreKind::Column, rows).unwrap();
        assert_eq!(moved.store_kind(), StoreKind::Column);
        assert_eq!(moved.row_count(), 8);
        assert_eq!(moved.row(7), vec![Value::Int(7), Value::Double(14.0)]);
    }

    #[test]
    fn pk_key_extraction() {
        let s = schema();
        let key = pk_key_of(&s, &[Value::Int(3), Value::Double(1.0)]);
        assert_eq!(&*key, &[Value::Int(3)]);
    }
}
