//! Figure 6(b): accuracy of the runtime estimation vs. **number of
//! aggregates** (1–5) on a fixed 10m-tuple table.

use std::collections::BTreeMap;

use hsd_bench::{build_db, calibrated_model, ctx_of, fmt_ms, print_series, scaled_rows, wide_spec};
use hsd_core::estimator::estimate_query;
use hsd_engine::WorkloadRunner;
use hsd_query::{AggFunc, Aggregate, AggregateQuery, Query};
use hsd_storage::StoreKind;

fn main() -> hsd_types::Result<()> {
    let model = calibrated_model()?;
    let runner = WorkloadRunner::new();
    let n = scaled_rows(10_000_000);
    let spec = wide_spec("t", n, 0xF16B);
    let funcs = [
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Max,
        AggFunc::Sum,
        AggFunc::Min,
    ];
    let mut dbs: Vec<_> = Vec::new();
    for store in StoreKind::BOTH {
        dbs.push((store, build_db(&spec, store)?));
    }
    let mut rows_out = Vec::new();
    let mut errs: BTreeMap<StoreKind, Vec<f64>> = BTreeMap::new();
    for k in 1..=5usize {
        let aggregates: Vec<Aggregate> = (0..k)
            .map(|i| Aggregate {
                func: funcs[i],
                column: spec.kf_col(i),
            })
            .collect();
        let query = Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates,
            group_by: None,
            filter: vec![],
            join: None,
        });
        let mut line = vec![k.to_string()];
        for (store, db) in dbs.iter_mut() {
            let ctx = ctx_of(db);
            let assignment: BTreeMap<String, StoreKind> =
                [("t".to_string(), *store)].into_iter().collect();
            let est = estimate_query(&model, &ctx, &assignment, &query);
            let run = runner.time_query(db, &query, 3)?.as_secs_f64() * 1e3;
            errs.entry(*store)
                .or_default()
                .push((est - run).abs() / run);
            line.push(fmt_ms(est));
            line.push(fmt_ms(run));
        }
        rows_out.push(line);
    }
    print_series(
        &format!("Figure 6(b): estimation accuracy vs number of aggregates ({n} tuples)"),
        &[
            "#aggregates",
            "RS est (ms)",
            "RS run (ms)",
            "CS est (ms)",
            "CS run (ms)",
        ],
        &rows_out,
    );
    for (store, e) in errs {
        let mean = e.iter().sum::<f64>() / e.len() as f64;
        println!(
            "mean relative estimation error [{store}]: {:.1} %",
            mean * 100.0
        );
    }
    Ok(())
}
