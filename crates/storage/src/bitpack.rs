//! Bit-packed vectors of dictionary codes.
//!
//! Column-store code vectors hold small integers (dictionary codes), so
//! storing them in `ceil(log2(dict_size))` bits instead of full 32-bit words
//! is the classic column-store compression the paper's `f_compression`
//! adjustment reacts to. The width grows on demand: when a push would not
//! fit, the vector repacks itself at a wider width (amortized O(1) per push).

/// A growable vector of `u32` values stored at a fixed bit width.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitPackedVec {
    words: Vec<u64>,
    /// Bits per entry, 0..=32. Width 0 is valid and means "all values are 0".
    width: u8,
    len: usize,
}

/// Number of bits needed to represent `max_value`.
pub fn bits_for(max_value: u32) -> u8 {
    (32 - max_value.leading_zeros()) as u8
}

impl BitPackedVec {
    /// Empty vector with zero width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty vector pre-sized for `capacity` entries of `width` bits.
    pub fn with_capacity(width: u8, capacity: usize) -> Self {
        assert!(width <= 32, "code width above 32 bits");
        let words = (capacity * width as usize).div_ceil(64);
        BitPackedVec { words: Vec::with_capacity(words), width, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bits-per-entry.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Heap bytes occupied by the packed representation.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    fn mask(width: u8) -> u64 {
        if width == 0 {
            0
        } else if width == 32 {
            u32::MAX as u64
        } else {
            (1u64 << width) - 1
        }
    }

    /// Append a value, widening the representation if required.
    pub fn push(&mut self, value: u32) {
        let needed = bits_for(value);
        if needed > self.width {
            self.repack(needed);
        }
        if self.width == 0 {
            // All stored values are zero; nothing to write.
            self.len += 1;
            return;
        }
        let bit = self.len * self.width as usize;
        let word = bit / 64;
        let shift = bit % 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= (value as u64) << shift;
        let spill = shift + self.width as usize;
        if spill > 64 {
            self.words.push((value as u64) >> (64 - shift));
        }
        self.len += 1;
    }

    /// Read the entry at `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        assert!(idx < self.len, "BitPackedVec index {idx} out of bounds (len {})", self.len);
        if self.width == 0 {
            return 0;
        }
        let bit = idx * self.width as usize;
        let word = bit / 64;
        let shift = bit % 64;
        let mut v = self.words[word] >> shift;
        let spill = shift + self.width as usize;
        if spill > 64 {
            v |= self.words[word + 1] << (64 - shift);
        }
        (v & Self::mask(self.width)) as u32
    }

    /// Overwrite the entry at `idx`, widening if required.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: u32) {
        assert!(idx < self.len, "BitPackedVec index {idx} out of bounds (len {})", self.len);
        let needed = bits_for(value);
        if needed > self.width {
            self.repack(needed);
        }
        if self.width == 0 {
            return; // value must be 0 to have width 0 after repack
        }
        let bit = idx * self.width as usize;
        let word = bit / 64;
        let shift = bit % 64;
        let mask = Self::mask(self.width);
        self.words[word] &= !(mask << shift);
        self.words[word] |= (value as u64) << shift;
        let spill = shift + self.width as usize;
        if spill > 64 {
            let hi_bits = spill - 64;
            let hi_mask = (1u64 << hi_bits) - 1;
            self.words[word + 1] &= !hi_mask;
            self.words[word + 1] |= (value as u64) >> (64 - shift);
        }
    }

    /// Re-encode every entry at `new_width` bits. O(len).
    pub fn repack(&mut self, new_width: u8) {
        assert!(new_width <= 32, "code width above 32 bits");
        assert!(new_width >= self.width, "repack must not narrow the width");
        if new_width == self.width {
            return;
        }
        let mut wider = BitPackedVec::with_capacity(new_width, self.len);
        wider.width = new_width;
        for i in 0..self.len {
            let v = self.get(i);
            // Inline push without the widen check: new_width is sufficient.
            let bit = wider.len * new_width as usize;
            let word = bit / 64;
            let shift = bit % 64;
            if word >= wider.words.len() {
                wider.words.push(0);
            }
            wider.words[word] |= (v as u64) << shift;
            if shift + new_width as usize > 64 {
                wider.words.push((v as u64) >> (64 - shift));
            }
            wider.len += 1;
        }
        *self = wider;
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl FromIterator<u32> for BitPackedVec {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut v = BitPackedVec::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u32::MAX), 32);
    }

    #[test]
    fn push_get_round_trip() {
        let vals = [0u32, 1, 7, 3, 200, 5, 65_535, 12];
        let v: BitPackedVec = vals.iter().copied().collect();
        assert_eq!(v.len(), vals.len());
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(v.get(i), x, "index {i}");
        }
    }

    #[test]
    fn zero_width_stores_zeros() {
        let mut v = BitPackedVec::new();
        for _ in 0..100 {
            v.push(0);
        }
        assert_eq!(v.width(), 0);
        assert_eq!(v.len(), 100);
        assert_eq!(v.get(99), 0);
        assert!(v.heap_bytes() == 0);
    }

    #[test]
    fn widening_preserves_existing_entries() {
        let mut v = BitPackedVec::new();
        for i in 0..50u32 {
            v.push(i % 4);
        }
        assert_eq!(v.width(), 2);
        v.push(1_000_000);
        assert_eq!(v.width(), bits_for(1_000_000));
        for i in 0..50usize {
            assert_eq!(v.get(i), (i % 4) as u32);
        }
        assert_eq!(v.get(50), 1_000_000);
    }

    #[test]
    fn set_updates_in_place() {
        let mut v: BitPackedVec = (0..100u32).collect();
        v.set(3, 42);
        assert_eq!(v.get(3), 42);
        assert_eq!(v.get(2), 2);
        assert_eq!(v.get(4), 4);
        // widening set
        v.set(10, u32::MAX);
        assert_eq!(v.get(10), u32::MAX);
        assert_eq!(v.get(9), 9);
        assert_eq!(v.get(11), 11);
    }

    #[test]
    fn entries_spanning_word_boundaries() {
        // width 7 entries straddle 64-bit boundaries regularly.
        let vals: Vec<u32> = (0..200).map(|i| (i * 13) % 128).collect();
        let v: BitPackedVec = vals.iter().copied().collect();
        assert_eq!(v.width(), 7);
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(v.get(i), x, "index {i}");
        }
        let mut w = v.clone();
        for (i, &x) in vals.iter().enumerate().rev() {
            w.set(i, 127 - x);
        }
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(w.get(i), 127 - x, "index {i}");
        }
    }

    #[test]
    fn width_32_round_trip() {
        let vals = [u32::MAX, 0, 123_456_789, u32::MAX - 1];
        let v: BitPackedVec = vals.iter().copied().collect();
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(v.get(i), x);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v: BitPackedVec = [1u32, 2].iter().copied().collect();
        v.get(2);
    }

    #[test]
    fn iter_matches_get() {
        let vals: Vec<u32> = (0..77).map(|i| i * 3 % 23).collect();
        let v: BitPackedVec = vals.iter().copied().collect();
        let collected: Vec<u32> = v.iter().collect();
        assert_eq!(collected, vals);
    }
}
