//! Scan-throughput measurement, recorded as `BENCH_scan.json`.
//!
//! Measures the batched scan pipeline (block-decoded bit-packing +
//! selection vectors) against the per-element `get` baseline on the shared
//! 1M-row workload, and writes the results — including the
//! batched-vs-scalar speedup on the unselective range scan, the acceptance
//! metric of the pipeline PR — to `BENCH_scan.json` in the working
//! directory so future PRs have a perf trajectory to compare against.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_scan`.

use std::time::Instant;

use hsd_bench::scan_workload::{build_table, conjunction, range_90pct, range_selective, ROWS};
use hsd_types::Json;

/// Median wall-clock seconds of `runs` executions of `f`.
fn time_median(runs: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut samples = Vec::with_capacity(runs);
    let mut result = 0;
    for _ in 0..runs {
        let start = Instant::now();
        result = std::hint::black_box(f());
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], result)
}

struct Record {
    name: &'static str,
    seconds: f64,
    matches: usize,
}

impl Record {
    fn rows_per_sec(&self) -> f64 {
        ROWS as f64 / self.seconds
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("seconds", Json::Num(self.seconds)),
            ("matches", Json::Int(self.matches as i64)),
            ("rows_per_sec", Json::Num(self.rows_per_sec())),
        ])
    }
}

fn main() {
    const RUNS: usize = 9;
    eprintln!("[bench_scan] building 1M-row tables (packed + plain ablation) ...");
    let packed = build_table(true);
    let plain = build_table(false);
    let unsel = range_90pct();
    let sel = range_selective();
    let conj = conjunction();

    let mut records = Vec::new();
    let mut run = |name: &'static str, f: &mut dyn FnMut() -> usize| {
        let (seconds, matches) = time_median(RUNS, f);
        eprintln!(
            "[bench_scan] {name:<32} {:>8.3} ms  {:>12.0} rows/s  ({matches} matches)",
            seconds * 1e3,
            ROWS as f64 / seconds
        );
        records.push(Record {
            name,
            seconds,
            matches,
        });
    };

    run("unselective_scalar_get", &mut || {
        packed
            .filter_rows_scalar(std::slice::from_ref(&unsel))
            .len()
    });
    run("unselective_block_selvec", &mut || {
        packed.filter_selvec(std::slice::from_ref(&unsel)).count()
    });
    run("unselective_block_selvec_plain", &mut || {
        plain.filter_selvec(std::slice::from_ref(&unsel)).count()
    });
    run("selective_scalar_get", &mut || {
        packed.filter_rows_scalar(std::slice::from_ref(&sel)).len()
    });
    run("selective_block_selvec", &mut || {
        packed.filter_selvec(std::slice::from_ref(&sel)).count()
    });
    run("conjunction_scalar_get", &mut || {
        packed.filter_rows_scalar(&conj).len()
    });
    run("conjunction_block_selvec", &mut || {
        packed.filter_selvec(&conj).count()
    });
    run("aggregate_sum_block_decode", &mut || {
        let mut sum = 0.0;
        packed.for_each_numeric_sel(1, None, |v| sum += v);
        sum as usize
    });

    let of = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .expect("record exists")
    };
    assert_eq!(
        of("unselective_scalar_get").matches,
        of("unselective_block_selvec").matches,
        "batched and scalar scans must agree"
    );
    assert_eq!(
        of("conjunction_scalar_get").matches,
        of("conjunction_block_selvec").matches,
        "batched and scalar conjunctions must agree"
    );
    let speedup = of("unselective_scalar_get").seconds / of("unselective_block_selvec").seconds;
    let target = 5.0;
    eprintln!(
        "[bench_scan] unselective speedup: {speedup:.2}x (target >= {target}x) -> {}",
        if speedup >= target { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("benchmark", Json::Str("scan_throughput".to_string())),
        ("rows", Json::Int(ROWS as i64)),
        ("runs_per_measurement", Json::Int(RUNS as i64)),
        (
            "results",
            Json::Arr(records.iter().map(Record::to_json).collect()),
        ),
        ("unselective_speedup_vs_scalar", Json::Num(speedup)),
        ("speedup_target", Json::Num(target)),
        ("pass", Json::Bool(speedup >= target)),
    ]);
    std::fs::write("BENCH_scan.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_scan.json");
    eprintln!("[bench_scan] wrote BENCH_scan.json");
    if speedup < target {
        std::process::exit(1);
    }
}
