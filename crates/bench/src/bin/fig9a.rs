//! Figure 9(a): vertical partitioning, **OLAP setting** — 10 keyfigures,
//! 8 group-by attributes, and only 2 attributes used for selections or
//! updates.

use hsd_bench::{fig9, scaled_rows};
use hsd_query::TableSpec;

fn main() -> hsd_types::Result<()> {
    let rows = scaled_rows(10_000_000);
    let spec = TableSpec {
        name: "t".into(),
        rows,
        fk_attrs: 0,
        fk_cardinality: 1,
        keyfigures: 10,
        group_attrs: 8,
        filter_attrs: 0,
        status_attrs: 2,
        group_cardinality: 100,
        status_cardinality: 1000,
        kf_distinct: (rows / 20).max(64) as u32,
        seed: 0xF19A,
    };
    fig9::run_setting(
        &format!("Figure 9(a): vertical partitioning, OLAP setting ({rows} tuples)"),
        &spec,
    )
}
