//! End-to-end advisor behaviour through the public facade: offline
//! recommendation, layout application, online adaptation, and the TPC-H
//! scenario — with a hand-built cost model so the tests are deterministic
//! and fast (calibration itself is covered in `hsd-core`).

use std::collections::BTreeMap;
use std::sync::Arc;

use hybrid_store_advisor::advisor::cost::AdjustmentFn;
use hybrid_store_advisor::advisor::report;
use hybrid_store_advisor::prelude::*;

/// A cost model with the canonical asymmetries (CS 10× cheaper scans,
/// RS 5× cheaper writes), as a fully deterministic stand-in for
/// calibration.
fn model() -> CostModel {
    let mut m = CostModel::neutral();
    m.row.f_rows = AdjustmentFn::Linear {
        slope: 1e-3,
        intercept: 0.05,
    };
    m.column.f_rows = AdjustmentFn::Linear {
        slope: 1e-4,
        intercept: 0.05,
    };
    m.row.c_group_by = 2.0;
    m.column.c_group_by = 3.0;
    m.row.ins_row = AdjustmentFn::Constant(0.002);
    m.column.ins_row = AdjustmentFn::Constant(0.01);
    m.row.sel_point_ms = 0.002;
    m.column.sel_point_ms = 0.008;
    m.row.upd_row_ms = 0.002;
    m.column.upd_row_ms = 0.01;
    m.row.sel_per_row_scan = 2e-5;
    m.column.sel_per_row_scan = 2e-6;
    m.join_factor = [[1.3, 2.0], [1.2, 1.4]];
    m
}

fn spec() -> TableSpec {
    TableSpec::paper_wide("t", 5_000, 17)
}

fn stats_for(spec: &TableSpec) -> BTreeMap<String, TableStats> {
    let db = HybridDatabase::new();
    db.create_single(spec.schema().unwrap(), StoreKind::Column)
        .unwrap();
    db.bulk_load(&spec.name, spec.rows()).unwrap();
    let mut out = BTreeMap::new();
    out.insert(
        spec.name.clone(),
        db.catalog()
            .entry_by_name(&spec.name)
            .unwrap()
            .stats
            .clone(),
    );
    out
}

#[test]
fn crossover_moves_with_olap_fraction() {
    let advisor = StorageAdvisor::new(model());
    let s = spec();
    let schema = Arc::new(s.schema().unwrap());
    let stats = stats_for(&s);
    let mut last_store = None;
    let mut saw_rs = false;
    let mut saw_cs = false;
    for frac in [0.0, 0.01, 0.02, 0.05, 0.2, 0.5] {
        let w = WorkloadGenerator::single_table(
            &s,
            &MixedWorkloadConfig {
                queries: 300,
                olap_fraction: frac,
                seed: 3,
                ..Default::default()
            },
        );
        let rec = advisor
            .recommend_offline(std::slice::from_ref(&schema), &stats, &w, false)
            .unwrap();
        match rec.layout.placement("t") {
            TablePlacement::Single(StoreKind::Row) => {
                assert!(!saw_cs, "RS must not reappear after the CS crossover");
                saw_rs = true;
                last_store = Some(StoreKind::Row);
            }
            TablePlacement::Single(StoreKind::Column) => {
                saw_cs = true;
                last_store = Some(StoreKind::Column);
            }
            other => panic!("unexpected placement {other:?}"),
        }
    }
    assert!(saw_rs, "pure OLTP should favour the row store");
    assert_eq!(
        last_store,
        Some(StoreKind::Column),
        "OLAP-heavy must land on the column store"
    );
}

#[test]
fn report_renders_and_statements_apply() {
    let advisor = StorageAdvisor::new(model());
    let s = spec();
    let schema = Arc::new(s.schema().unwrap());
    let stats = stats_for(&s);
    let w = WorkloadGenerator::single_table(
        &s,
        &MixedWorkloadConfig {
            queries: 300,
            olap_fraction: 0.05,
            hot_fraction: Some(0.1),
            seed: 4,
            ..Default::default()
        },
    );
    let rec = advisor
        .recommend_offline(&[schema], &stats, &w, true)
        .unwrap();
    let text = report::render(&rec);
    assert!(text.contains("Storage Advisor Recommendation"));
    assert!(!rec.statements.is_empty());

    // Applying the recommended layout preserves the data.
    let db = HybridDatabase::new();
    db.create_single(s.schema().unwrap(), StoreKind::Row)
        .unwrap();
    db.bulk_load("t", s.rows()).unwrap();
    let before = db.row_count("t").unwrap();
    mover::apply_layout(&db, &rec.layout).unwrap();
    assert_eq!(db.row_count("t").unwrap(), before);
    let check = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Count, 0));
    let out = db.execute(&check).unwrap();
    assert_eq!(out.aggregates().unwrap()[0].values[0], before as f64);
}

#[test]
fn online_adaptation_through_facade() {
    let s = spec();
    let db = HybridDatabase::new();
    db.create_single(s.schema().unwrap(), StoreKind::Row)
        .unwrap();
    db.bulk_load("t", s.rows()).unwrap();
    let mut online = OnlineAdvisor::new(
        StorageAdvisor::new(model()),
        OnlineConfig {
            evaluation_interval: 50,
            min_improvement: 0.05,
            enable_partitioning: false,
            ..Default::default()
        },
    );
    // analytical burst
    let w = WorkloadGenerator::single_table(
        &s,
        &MixedWorkloadConfig {
            queries: 100,
            olap_fraction: 0.7,
            seed: 8,
            ..Default::default()
        },
    );
    let mut adaptation = None;
    for q in &w.queries {
        db.execute(q).unwrap();
        if let Some(a) = online.observe(&db, q).unwrap() {
            adaptation = Some(a);
            break;
        }
    }
    let a = adaptation.expect("analytical burst must trigger adaptation");
    assert_eq!(a.changed_tables, vec!["t".to_string()]);
    online.apply(&db, &a).unwrap();
    assert_eq!(
        db.catalog().single_store_of("t").unwrap(),
        StoreKind::Column
    );
}

#[test]
fn tpch_recommendation_matches_paper_expectations() {
    use hybrid_store_advisor::tpch::{
        generate_workload, schema, TpchGenerator, TpchWorkloadConfig,
    };
    let g = TpchGenerator::new(0.001, 2);
    let db = HybridDatabase::new();
    g.load_uniform(&db, StoreKind::Row).unwrap();
    let stats: BTreeMap<String, TableStats> = db
        .catalog()
        .entries()
        .iter()
        .map(|e| (e.schema.name.clone(), e.stats.clone()))
        .collect();
    let schemas: Vec<_> = schema::all().unwrap().into_iter().map(Arc::new).collect();
    let w = generate_workload(
        &g,
        &TpchWorkloadConfig {
            queries: 1_500,
            olap_fraction: 0.02,
            ..Default::default()
        },
    );
    let advisor = StorageAdvisor::new(model());
    let rec = advisor
        .recommend_offline(&schemas, &stats, &w, false)
        .unwrap();
    // The paper: "the tables lineitem and orders were put to the column
    // store while the remaining tables have been stored in the row store".
    assert_eq!(
        rec.layout.placement("lineitem"),
        TablePlacement::Single(StoreKind::Column)
    );
    assert_eq!(
        rec.layout.placement("orders"),
        TablePlacement::Single(StoreKind::Column)
    );
    for t in ["region", "nation", "supplier", "customer"] {
        assert_eq!(
            rec.layout.placement(t),
            TablePlacement::Single(StoreKind::Row),
            "{t} should stay in the row store"
        );
    }
    // With partitioning enabled, lineitem and orders gain hot partitions.
    let rec_p = advisor
        .recommend_offline(&schemas, &stats, &w, true)
        .unwrap();
    for t in ["lineitem", "orders"] {
        match rec_p.layout.placement(t) {
            TablePlacement::Partitioned(p) => {
                assert!(
                    p.horizontal.is_some(),
                    "{t} should get a hot insert partition"
                );
            }
            other => panic!("{t} should be partitioned, got {other:?}"),
        }
    }
    // Applying the partitioned layout keeps every table intact.
    let counts: Vec<(String, usize)> = db
        .table_names()
        .iter()
        .map(|t| (t.clone(), db.row_count(t).unwrap()))
        .collect();
    mover::apply_layout(&db, &rec_p.layout).unwrap();
    for (t, n) in counts {
        assert_eq!(
            db.row_count(&t).unwrap(),
            n,
            "{t} lost rows during migration"
        );
    }
    // And the workload still runs.
    let runner_db = db;
    for q in w.queries.iter().take(300) {
        runner_db.execute(q).unwrap();
    }
}
