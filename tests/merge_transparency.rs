//! Merge-transparency invariant: the delta merge is a physical
//! reorganization only. Any interleaving of writes and queries must produce
//! identical results whether merges run after every write, never, whenever
//! the online advisor's cost-scheduled maintenance decides, or sliced up by
//! the background maintenance worker between statements — merge *timing*
//! may change performance, never answers.

use proptest::prelude::*;

use hybrid_store_advisor::advisor::AdjustmentFn;
use hybrid_store_advisor::engine::QueryOutput;
use hybrid_store_advisor::prelude::*;
use hybrid_store_advisor::storage::{MemBackend, SyncPolicy, WalBackend, WalWriter};

const ROWS: i64 = 96;

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", ColumnType::BigInt),
            ColumnDef::new("kf", ColumnType::Double),
            ColumnDef::new("grp", ColumnType::Integer),
            ColumnDef::new("st", ColumnType::Integer),
        ],
        vec![0],
    )
    .unwrap()
}

fn placements() -> Vec<TablePlacement> {
    vec![
        TablePlacement::Single(StoreKind::Column),
        TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(ROWS * 3 / 4),
            }),
            vertical: Some(VerticalSpec { row_cols: vec![3] }),
            ..Default::default()
        }),
    ]
}

fn build_db(placement: &TablePlacement) -> HybridDatabase {
    build_logged_db(placement, None)
}

/// [`build_db`], optionally with a WAL attached *before* the first DDL so
/// the log captures the whole history (used by [`Policy::CrashDuringMerge`]).
fn build_logged_db(placement: &TablePlacement, wal: Option<Box<dyn WalBackend>>) -> HybridDatabase {
    let db = HybridDatabase::new();
    if let Some(backend) = wal {
        db.attach_wal(WalWriter::new(backend, SyncPolicy::Always));
    }
    db.create_single(schema(), StoreKind::Row).unwrap();
    db.bulk_load(
        "t",
        (0..ROWS).map(|i| {
            vec![
                Value::BigInt(i),
                Value::Double((i % 11) as f64),
                Value::Int((i % 5) as i32),
                Value::Int((i % 3) as i32),
            ]
        }),
    )
    .unwrap();
    mover::move_table(&db, "t", placement).unwrap();
    db
}

/// Advisor tuned to merge eagerly (tiny modeled merge cost, punitive tail
/// term), so scheduled merges actually fire inside short random sequences.
fn eager_advisor() -> OnlineAdvisor {
    let mut m = CostModel::neutral();
    m.column.f_rows = AdjustmentFn::Constant(1.0);
    m.column.f_tail = AdjustmentFn::Linear {
        slope: 50.0,
        intercept: 1.0,
    };
    m.column.merge_ms = AdjustmentFn::Constant(0.001);
    OnlineAdvisor::new(
        StorageAdvisor::new(m),
        OnlineConfig {
            evaluation_interval: usize::MAX,
            maintenance_interval: 3,
            merge_min_tail: 2,
            merge_safety_factor: 0.5,
            ..Default::default()
        },
    )
}

#[derive(Debug, Clone, Copy)]
enum Policy {
    AlwaysMerge,
    NeverMerge,
    AdvisorScheduled,
    /// Advisor-scheduled, but each merge is applied through the bounded
    /// incremental path: a few code-vector rows of remap budget per
    /// statement, with queries running between the slices — the worst case
    /// for the shadow-rebuild consistency protocol.
    ChunkedMerge,
    /// Advisor-scheduled, with the merge/retract decisions handed to a
    /// [`MaintenanceWorker`] that drains one paced slice per statement —
    /// the background worker interleaved with the same random writes, the
    /// production shape of the incremental path.
    BackgroundMerge,
    /// [`Policy::BackgroundMerge`] running on a WAL, with the process
    /// "killed" the first time a sliced merge is caught mid-flight: the
    /// database is thrown away and rebuilt from the log image, discarding
    /// the in-flight shadow state. The recovered run must stay
    /// observationally identical — the crash may cost the merge, never an
    /// answer.
    CrashDuringMerge,
}

/// The tiny-budget worker used by the background policies: a 96-row table
/// still takes several slices — the interleaving the invariant is about.
fn slow_worker() -> MaintenanceWorker {
    MaintenanceWorker::new(WorkerConfig {
        pacer: PacerConfig {
            initial_budget: 7,
            min_budget: 4,
            max_budget: 16,
            ..Default::default()
        },
        ..WorkerConfig::default()
    })
}

fn run_policy(
    placement: &TablePlacement,
    policy: Policy,
    queries: &[Query],
) -> (Vec<Option<QueryOutput>>, usize, usize) {
    let mut wal_image = None;
    let mut db = if matches!(policy, Policy::CrashDuringMerge) {
        let mem = MemBackend::new();
        wal_image = Some(mem.share());
        build_logged_db(placement, Some(Box::new(mem)))
    } else {
        build_db(placement)
    };
    let mut advisor = match policy {
        Policy::AlwaysMerge => {
            db.set_merge_config(MergeConfig::always());
            None
        }
        Policy::NeverMerge => {
            db.set_merge_config(MergeConfig::disabled());
            None
        }
        Policy::AdvisorScheduled
        | Policy::ChunkedMerge
        | Policy::BackgroundMerge
        | Policy::CrashDuringMerge => {
            db.set_merge_config(MergeConfig::disabled());
            Some(eager_advisor())
        }
    };
    let chunked = matches!(policy, Policy::ChunkedMerge);
    let mut worker =
        matches!(policy, Policy::BackgroundMerge | Policy::CrashDuringMerge).then(slow_worker);
    let mut merges = 0;
    let mut crashes = 0;
    let mut in_flight: Option<MaintenanceAction> = None;
    let outputs = queries
        .iter()
        .map(|q| {
            let out = db.execute(q).ok();
            // Advance any in-flight chunked merge by one bounded slice
            // before the advisor looks at the table again.
            if let Some(action) = &in_flight {
                if action.apply_chunked(&db, 7).unwrap().done {
                    in_flight = None;
                    merges += 1;
                }
            }
            if let Some(w) = worker.as_mut() {
                // One paced slice between statements (merges counted from
                // the worker's stats at end of stream).
                w.tick(&db).unwrap();
            }
            // Kill-and-recover the first time a sliced merge is caught
            // mid-flight: the recovered database replays the committed log
            // prefix, the in-flight shadow state is lost, and a fresh
            // worker (its queue gone, like a real restart) takes over.
            if let Some(image) = wal_image.as_ref() {
                if crashes == 0 && db.merge_in_progress("t").unwrap() {
                    let (rec, report) = HybridDatabase::recover_bytes(&image.snapshot());
                    assert!(report.is_clean(), "{report:?}");
                    assert!(!rec.merge_in_progress("t").unwrap());
                    rec.set_merge_config(MergeConfig::disabled());
                    db = rec;
                    worker = Some(slow_worker());
                    crashes += 1;
                }
            }
            if let Some(adv) = advisor.as_mut() {
                adv.observe(&db, q).unwrap();
                for action in adv.take_maintenance() {
                    match &action {
                        MaintenanceAction::Merge { table, partition } => {
                            // The worker keys jobs by (table, partition):
                            // on the partitioned layout the advisor hands
                            // out cold-fragment jobs, and the worker's
                            // slices touch only the cold column fragment
                            // while the random stream keeps writing into
                            // both fragments.
                            if let Some(w) = worker.as_mut() {
                                w.enqueue(table, *partition);
                            } else if chunked {
                                if in_flight.is_none() {
                                    in_flight = Some(action);
                                }
                            } else {
                                action.apply(&db).unwrap();
                                merges += 1;
                            }
                        }
                        MaintenanceAction::Retract { table } => {
                            if let Some(w) = worker.as_mut() {
                                w.retract(&db, table).unwrap();
                            } else if chunked
                                && in_flight.as_ref().is_some_and(|a| a.table() == table)
                            {
                                action.apply(&db).unwrap();
                                in_flight = None;
                            } else {
                                action.apply(&db).unwrap();
                            }
                        }
                    }
                }
            }
            out
        })
        .collect();
    // Drain any merge still in flight at end of stream.
    if let Some(action) = &in_flight {
        while !action.apply_chunked(&db, 7).unwrap().done {}
        merges += 1;
    }
    if let Some(w) = worker.as_mut() {
        w.drain(&db).unwrap();
        merges += w.stats().jobs_completed as usize;
    }
    (outputs, merges, crashes)
}

/// A randomized statement over the fixed schema. Updates write *fresh*
/// keyfigure values so the dictionary tail actually grows between merges.
fn query_strategy() -> impl Strategy<Value = Query> {
    let agg = (0usize..5, any::<bool>(), -1i64..ROWS + 20).prop_map(|(f, grouped, bound)| {
        let funcs = [
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
        ];
        Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates: vec![Aggregate {
                func: funcs[f],
                column: 1,
            }],
            group_by: grouped.then_some(2),
            filter: if bound < 0 {
                vec![]
            } else {
                vec![ColRange::ge(0, Value::BigInt(bound))]
            },
            join: None,
        })
    });
    let select = (0i64..ROWS + 20, any::<bool>()).prop_map(|(id, point)| {
        Query::Select(SelectQuery {
            table: "t".into(),
            columns: Some(vec![0, 1, 3]),
            filter: if point {
                vec![ColRange::eq(0, Value::BigInt(id))]
            } else {
                vec![ColRange::between(
                    0,
                    Value::BigInt(id / 2),
                    Value::BigInt(id),
                )]
            },
        })
    });
    let fresh_update = (0i64..ROWS, 0u32..1_000_000).prop_map(|(id, salt)| {
        Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(1, Value::Double(1e6 + salt as f64 * 0.013))],
            filter: vec![ColRange::eq(0, Value::BigInt(id))],
        })
    });
    // Writes that land in the *row* fragment of the vertical split (column
    // 3), alone or combined with a column-fragment assignment in the same
    // statement — so cold-fragment merge slices interleave with writes to
    // both fragments of the partitioned layout.
    let row_frag_update = (0i64..ROWS, 0i32..50, any::<bool>()).prop_map(|(id, v, both)| {
        let mut sets = vec![(3, Value::Int(v))];
        if both {
            sets.push((1, Value::Double(2e6 + v as f64 * 0.07)));
        }
        Query::Update(UpdateQuery {
            table: "t".into(),
            sets,
            filter: vec![ColRange::eq(0, Value::BigInt(id))],
        })
    });
    let insert = (ROWS..ROWS + 200i64).prop_map(|id| {
        Query::Insert(InsertQuery {
            table: "t".into(),
            rows: vec![vec![
                Value::BigInt(id),
                Value::Double(0.25),
                Value::Int(1),
                Value::Int(2),
            ]],
        })
    });
    prop_oneof![agg, select, fresh_update, row_frag_update, insert]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleaved writes and queries yield the same outputs under
    /// always-merge, never-merge, and advisor-scheduled maintenance, on a
    /// single column-store table and on a hot/cold partitioned layout.
    #[test]
    fn merge_policies_are_observationally_equivalent(
        mut queries in prop::collection::vec(query_strategy(), 12..36)
    ) {
        // Canonical final probe: full contents, fixed order within one
        // layout, so the comparison also covers the end state.
        queries.push(Query::Select(SelectQuery {
            table: "t".into(),
            columns: None,
            filter: vec![],
        }));
        for placement in placements() {
            let (reference, _, _) = run_policy(&placement, Policy::AlwaysMerge, &queries);
            for policy in [
                Policy::NeverMerge,
                Policy::AdvisorScheduled,
                Policy::ChunkedMerge,
                Policy::BackgroundMerge,
                Policy::CrashDuringMerge,
            ] {
                let (outputs, _, _) = run_policy(&placement, policy, &queries);
                prop_assert_eq!(
                    &outputs, &reference,
                    "{:?} diverges from always-merge under {:?}", policy, placement
                );
            }
        }
    }
}

/// Drive real reader/writer/worker threads against one shared database and
/// check snapshot isolation the concurrent engine promises: every
/// whole-table update is a single latched statement, so a reader pinning an
/// epoch must see *all* rows at one generation — `Min == Max` on the
/// updated keyfigure — while the threaded maintenance worker's merge slices
/// concurrently remap the very column being scanned. Generations a reader
/// observes must also be monotone (epochs never travel backwards), and the
/// end state must equal the serial outcome: every row at the final
/// generation, no rows lost.
fn run_concurrent_generations(
    placement: &TablePlacement,
    partition: MergePartition,
    generations: u32,
) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let db = HybridDatabase::new();
    db.create_single(schema(), StoreKind::Row).unwrap();
    // Uniform keyfigure start (generation 0), so Min == Max holds from the
    // first snapshot onwards.
    db.bulk_load(
        "t",
        (0..ROWS).map(|i| {
            vec![
                Value::BigInt(i),
                Value::Double(0.0),
                Value::Int((i % 5) as i32),
                Value::Int((i % 3) as i32),
            ]
        }),
    )
    .unwrap();
    mover::move_table(&db, "t", placement).unwrap();
    db.set_merge_config(MergeConfig::disabled());
    let shared: SharedDatabase = Arc::new(db);
    // Tiny slice budgets: a 96-row remap takes many slices, maximizing the
    // window in which scans overlap a half-remapped shadow rebuild.
    let worker = BackgroundWorker::spawn(
        shared.clone(),
        WorkerConfig {
            pacer: PacerConfig {
                initial_budget: 7,
                min_budget: 4,
                max_budget: 16,
                ..Default::default()
            },
            ..WorkerConfig::default()
        },
        std::time::Duration::from_micros(50),
    );
    let done = Arc::new(AtomicBool::new(false));
    let progress: Vec<_> = (0..2)
        .map(|_| Arc::new(std::sync::atomic::AtomicUsize::new(0)))
        .collect();
    let readers: Vec<_> = progress
        .iter()
        .map(|counter| {
            let db = shared.clone();
            let done = done.clone();
            let counter = Arc::clone(counter);
            std::thread::spawn(move || {
                let probe = Query::Aggregate(AggregateQuery {
                    table: "t".into(),
                    aggregates: vec![
                        Aggregate {
                            func: AggFunc::Min,
                            column: 1,
                        },
                        Aggregate {
                            func: AggFunc::Max,
                            column: 1,
                        },
                    ],
                    group_by: None,
                    filter: vec![],
                    join: None,
                });
                let mut last = 0.0f64;
                let mut snapshots = 0usize;
                while !done.load(Ordering::Acquire) {
                    let out = db.execute(&probe).unwrap();
                    let row = &out.aggregates().unwrap()[0];
                    let (min, max) = (row.values[0], row.values[1]);
                    assert_eq!(
                        min, max,
                        "torn scan: one snapshot saw rows from two generations"
                    );
                    assert!(
                        min >= last,
                        "generation travelled backwards: {min} after {last}"
                    );
                    last = min;
                    snapshots += 1;
                    counter.store(snapshots, Ordering::Release);
                }
                snapshots
            })
        })
        .collect();
    // The writer: one whole-table update per generation, each interning a
    // fresh dictionary value (the tail the worker keeps merging away).
    for g in 1..=generations {
        shared
            .execute(&Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(g as f64))],
                filter: vec![],
            }))
            .unwrap();
        worker.enqueue("t", partition);
    }
    // On a small machine the writer can finish before the readers are even
    // scheduled; hold the stream open (at the final generation) until every
    // reader has taken a handful of genuinely concurrent snapshots.
    while progress.iter().any(|c| c.load(Ordering::Acquire) < 5) {
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() >= 5);
    }
    let stats = worker.stop(true);
    assert!(
        stats.entries_folded > 0,
        "no merge work overlapped the scans — the test lost its subject"
    );
    // Serial reference: the interleaving must end exactly where the
    // single-threaded sequence would.
    assert_eq!(shared.row_count("t").unwrap(), ROWS as usize);
    let out = shared
        .execute(&Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates: vec![
                Aggregate {
                    func: AggFunc::Min,
                    column: 1,
                },
                Aggregate {
                    func: AggFunc::Max,
                    column: 1,
                },
            ],
            group_by: None,
            filter: vec![],
            join: None,
        }))
        .unwrap();
    let row = &out.aggregates().unwrap()[0];
    assert_eq!(row.values[0], generations as f64);
    assert_eq!(row.values[1], generations as f64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Snapshot isolation under real threads: concurrent readers never see
    /// a torn whole-table update or a backwards generation while the
    /// threaded worker merges the scanned column, on both the single
    /// column-store layout and the hot/cold partitioned layout.
    #[test]
    fn concurrent_snapshots_are_never_torn(generations in 8u32..24) {
        run_concurrent_generations(
            &TablePlacement::Single(StoreKind::Column),
            MergePartition::Whole,
            generations,
        );
        run_concurrent_generations(&placements()[1], MergePartition::Cold, generations);
    }
}

/// Deterministic sanity check that the advisor-scheduled policy actually
/// merges inside a scan-heavy sequence (so the proptest above genuinely
/// exercises merge timing, not just the disabled path).
#[test]
fn eager_advisor_merges_during_scan_heavy_sequence() {
    let queries: Vec<Query> = (0..48)
        .map(|i| {
            if i % 2 == 0 {
                Query::Update(UpdateQuery {
                    table: "t".into(),
                    sets: vec![(1, Value::Double(2e6 + i as f64))],
                    filter: vec![ColRange::eq(0, Value::BigInt(i % ROWS))],
                })
            } else {
                Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1))
            }
        })
        .collect();
    let (_, merges, _) = run_policy(
        &TablePlacement::Single(StoreKind::Column),
        Policy::AdvisorScheduled,
        &queries,
    );
    assert!(merges > 0, "the eager advisor must schedule merges");
    // The same stream through the background worker completes merges too,
    // so the proptest's worker policy genuinely exercises sliced merges
    // interleaved with writes.
    let (_, background_merges, _) = run_policy(
        &TablePlacement::Single(StoreKind::Column),
        Policy::BackgroundMerge,
        &queries,
    );
    assert!(
        background_merges > 0,
        "the background worker must complete scheduled merges"
    );
    // On the hot/cold partitioned layout the advisor hands out
    // *cold-fragment* jobs (the updates above hit historic ids, so the
    // tail grows in the cold column fragment); the worker must drive those
    // region-keyed jobs to completion as well.
    let (_, cold_merges, _) = run_policy(&placements()[1], Policy::BackgroundMerge, &queries);
    assert!(
        cold_merges > 0,
        "cold-fragment jobs must complete on the partitioned layout"
    );
    // And the crash policy genuinely crashes on this stream: a sliced
    // merge is caught mid-flight and the database is rebuilt from the log,
    // so the proptest's CrashDuringMerge arm exercises real recoveries.
    let (_, _, crashes) = run_policy(
        &TablePlacement::Single(StoreKind::Column),
        Policy::CrashDuringMerge,
        &queries,
    );
    assert!(crashes > 0, "the crash policy must hit a mid-flight merge");
}
