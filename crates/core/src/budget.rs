//! Global budget-constrained placement selection.
//!
//! The per-table search in [`crate::advisor`] answers *"which store is
//! cheapest for this table?"*; the paper's advisor ultimately answers the
//! **global** question: *given a memory budget across all tables, which
//! placement **set** minimizes total workload cost?* This module supplies
//! the two missing pieces:
//!
//! 1. a **footprint model** ([`placement_footprint_bytes`]) pricing the
//!    in-memory bytes of every placement a table can take — uncompressed
//!    row store, dictionary-compressed bit-packed column store, and the
//!    hot/cold mixes of partitioned placements — from the same basic
//!    statistics the cost estimator consumes, and
//! 2. a **multiple-choice-knapsack selector** ([`select_under_budget`])
//!    over per-table candidate lists of `(cost, footprint)` pairs: exactly
//!    one candidate per table, total footprint within the budget, total
//!    cost minimized.
//!
//! The selector is the greedy-over-convex-hull MCKP heuristic: each
//! table's candidates are reduced to their efficient frontier, the
//! frontier to its convex hull (so marginal benefit-per-byte decreases
//! along it), every table starts at its smallest-footprint candidate, and
//! hull steps are applied globally in decreasing benefit-per-byte order
//! while they fit. Two properties the advisor relies on, both enforced by
//! tests below:
//!
//! - **Unconstrained ≡ greedy.** With no budget (or one the per-table
//!   argmin already satisfies) the selection equals the existing
//!   per-table greedy choice — the greedy path is the special case, not a
//!   separate code path to keep in sync.
//! - **Budget is a hard cap.** Whenever the smallest-footprint assignment
//!   fits at all (`feasible`), the selected set's footprint never exceeds
//!   the budget.

use std::collections::BTreeMap;

use hsd_catalog::{TablePlacement, Tier};
use hsd_storage::StoreKind;
use hsd_types::ColumnType;

use crate::estimator::{EstimationCtx, TableCtx};

// ---------------------------------------------------------------------------
// Footprint model

/// Modeled in-memory bytes of one row-store value of `ty` (fixed-width
/// slots; Varchars are priced at a small-string average since the engine
/// stores them inline as owned strings).
fn row_value_bytes(ty: ColumnType) -> f64 {
    match ty {
        ColumnType::Integer => 4.0,
        ColumnType::BigInt => 8.0,
        ColumnType::Double => 8.0,
        ColumnType::Decimal => 8.0,
        ColumnType::Date => 4.0,
        ColumnType::Boolean => 1.0,
        ColumnType::Varchar => 24.0,
    }
}

/// Modeled row-store bytes per row of the table (sum over all columns).
pub fn row_bytes_per_row(tctx: &TableCtx) -> f64 {
    tctx.column_types.iter().map(|&t| row_value_bytes(t)).sum()
}

/// Modeled column-store bytes per row of column `col`: the bit-packed
/// dictionary code plus the row's amortized share of the dictionary
/// itself. Falls back to the column's compression rate when distinct
/// counts are missing (stats-less tables price like their row encoding
/// scaled by what compression is known about).
fn column_value_bytes(tctx: &TableCtx, col: usize, rows: usize) -> f64 {
    let width = row_value_bytes(tctx.column_types[col]);
    let stats = match tctx.stats.columns.get(col) {
        Some(s) => s,
        None => return width,
    };
    if stats.distinct == 0 || rows == 0 {
        // No distinct count recorded: degrade via the compression rate
        // (itself 0.0 when unknown, i.e. price like the row store — the
        // conservative direction for a memory budget).
        return width * (1.0 - stats.compression_rate).clamp(0.0, 1.0);
    }
    let distinct = stats.distinct.min(rows).max(1);
    let code_bits = (usize::BITS - (distinct - 1).max(1).leading_zeros()) as f64;
    code_bits / 8.0 + distinct as f64 * width / rows as f64
}

/// Modeled column-store bytes per row of the table (all columns).
pub fn column_bytes_per_row(tctx: &TableCtx) -> f64 {
    let rows = tctx.stats.row_count;
    (0..tctx.column_types.len())
        .map(|c| column_value_bytes(tctx, c, rows))
        .sum()
}

/// Modeled bytes per row of the *cold* fragment of `spec` (bit-packed
/// column encoding; a vertical split routes its `row_cols` plus the
/// duplicated primary key to row-store pricing).
fn cold_bytes_per_row(tctx: &TableCtx, spec: &hsd_catalog::PartitionSpec) -> f64 {
    match &spec.vertical {
        Some(v) => {
            let n = tctx.column_types.len();
            let in_row = |c: usize| {
                v.row_cols.contains(&c) || tctx.pk_columns.contains(&(c as u32 as usize))
            };
            let row_part: f64 = (0..n)
                .filter(|&c| in_row(c))
                .map(|c| row_value_bytes(tctx.column_types[c]))
                .sum();
            // The primary key is materialized in both fragments.
            let pk_dup: f64 = tctx
                .pk_columns
                .iter()
                .filter(|&&c| c < n)
                .map(|&c| column_value_bytes(tctx, c, tctx.stats.row_count))
                .sum();
            let col_part: f64 = (0..n)
                .filter(|&c| !in_row(c))
                .map(|c| column_value_bytes(tctx, c, tctx.stats.row_count))
                .sum();
            row_part + col_part + pk_dup
        }
        None => column_bytes_per_row(tctx),
    }
}

/// Modeled in-memory footprint (bytes) of `placement` for the table
/// described by `tctx`. Partitioned placements compose the same hot/cold
/// selectivity split the cost estimator uses
/// ([`crate::partition::horizontal_hot_fraction`]): the hot horizontal
/// region prices at row-store bytes, the cold region at column-store
/// bytes, and a vertical split routes its `row_cols` (plus the primary
/// key, which lives in both fragments) to row-store pricing.
///
/// A cold fragment demoted to [`Tier::Disk`] contributes **nothing**
/// here — its bytes live in [`placement_disk_bytes`] instead, so a memory
/// budget constrains only what is actually resident.
pub fn placement_footprint_bytes(tctx: &TableCtx, placement: &TablePlacement) -> f64 {
    let rows = tctx.stats.row_count as f64;
    match placement {
        TablePlacement::Single(StoreKind::Row) => rows * row_bytes_per_row(tctx),
        TablePlacement::Single(StoreKind::Column) => rows * column_bytes_per_row(tctx),
        TablePlacement::Partitioned(spec) => {
            let hot = crate::partition::horizontal_hot_fraction(&tctx.stats, spec);
            let cold_in_memory = match spec.cold_tier {
                Tier::Memory => (1.0 - hot) * cold_bytes_per_row(tctx, spec),
                Tier::Disk => 0.0,
            };
            rows * (hot * row_bytes_per_row(tctx) + cold_in_memory)
        }
    }
}

/// Modeled on-disk bytes of `placement`: the cold fragment's bit-packed
/// size when it is demoted to [`Tier::Disk`], zero for every
/// memory-resident placement. The disk segment stores the same packed
/// words as the in-memory column store, so the two sides of the tier
/// split price a fragment identically — demotion *moves* bytes between
/// the accounts rather than changing their total.
pub fn placement_disk_bytes(tctx: &TableCtx, placement: &TablePlacement) -> f64 {
    match placement {
        TablePlacement::Partitioned(spec) if spec.cold_tier == Tier::Disk => {
            let hot = crate::partition::horizontal_hot_fraction(&tctx.stats, spec);
            tctx.stats.row_count as f64 * (1.0 - hot) * cold_bytes_per_row(tctx, spec)
        }
        _ => 0.0,
    }
}

/// Total modeled footprint of a full layout over every table in `ctx`.
pub fn layout_footprint_bytes(ctx: &EstimationCtx, layout: &hsd_catalog::StorageLayout) -> f64 {
    ctx.tables
        .iter()
        .map(|(name, tctx)| placement_footprint_bytes(tctx, &layout.placement(name)))
        .sum()
}

/// Total modeled on-disk bytes of a full layout over every table in `ctx`.
pub fn layout_disk_bytes(ctx: &EstimationCtx, layout: &hsd_catalog::StorageLayout) -> f64 {
    ctx.tables
        .iter()
        .map(|(name, tctx)| placement_disk_bytes(tctx, &layout.placement(name)))
        .sum()
}

// ---------------------------------------------------------------------------
// Multiple-choice knapsack selection

/// One placement a table could take, with its modeled workload cost and
/// memory footprint.
#[derive(Debug, Clone)]
pub struct PlacementCandidate {
    /// The placement.
    pub placement: TablePlacement,
    /// Modeled workload cost (ms) when the table takes this placement —
    /// query share plus delta upkeep.
    pub cost_ms: f64,
    /// Modeled in-memory bytes of this placement.
    pub footprint_bytes: f64,
    /// Modeled on-disk bytes of this placement (non-zero only for
    /// disk-tier cold fragments; reported, never budget-constrained).
    pub disk_bytes: f64,
}

/// A table's candidate list (at least one entry).
#[derive(Debug, Clone)]
pub struct TableCandidates {
    /// Table name.
    pub table: String,
    /// Candidate placements.
    pub candidates: Vec<PlacementCandidate>,
}

/// Outcome of a global selection.
#[derive(Debug, Clone)]
pub struct GlobalSelection {
    /// Chosen candidate index per table.
    pub choice: BTreeMap<String, usize>,
    /// Total modeled cost of the selection (ms).
    pub total_cost_ms: f64,
    /// Total modeled footprint of the selection (bytes).
    pub total_footprint_bytes: f64,
    /// Total modeled on-disk bytes of the selection. The knapsack never
    /// constrains this — disk is the *relief valve* the budget squeezes
    /// cold fragments into — but callers report it so operators can see
    /// what a memory budget costs in disk footprint.
    pub total_disk_bytes: f64,
    /// Whether the budget was satisfiable at all: `false` only when even
    /// the smallest-footprint assignment exceeds it (the selection then
    /// *is* that smallest assignment — the least-infeasible answer).
    pub feasible: bool,
}

/// Index of the per-table greedy choice: minimum cost, ties broken toward
/// the smaller footprint, then the earlier candidate.
fn greedy_choice(cands: &[PlacementCandidate]) -> usize {
    let mut best = 0usize;
    for (i, c) in cands.iter().enumerate().skip(1) {
        let b = &cands[best];
        if c.cost_ms < b.cost_ms
            || (c.cost_ms == b.cost_ms && c.footprint_bytes < b.footprint_bytes)
        {
            best = i;
        }
    }
    best
}

/// The efficient frontier of a candidate list as candidate indexes:
/// footprint strictly increasing, cost strictly decreasing, reduced to its
/// convex hull so the benefit-per-byte of successive steps is
/// non-increasing (the shape the greedy MCKP walk requires).
fn convex_frontier(cands: &[PlacementCandidate]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        cands[a]
            .footprint_bytes
            .total_cmp(&cands[b].footprint_bytes)
            .then(cands[a].cost_ms.total_cmp(&cands[b].cost_ms))
    });
    // Efficient frontier: drop any candidate dominated by a smaller-or-
    // equal-footprint candidate of no-worse cost.
    let mut frontier: Vec<usize> = Vec::new();
    for i in order {
        match frontier.last() {
            Some(&last) if cands[i].cost_ms >= cands[last].cost_ms => continue,
            _ => frontier.push(i),
        }
    }
    // Convex hull: pop the middle point whenever its step ratio does not
    // exceed the following step's ratio.
    let ratio = |a: usize, b: usize| {
        (cands[a].cost_ms - cands[b].cost_ms)
            / (cands[b].footprint_bytes - cands[a].footprint_bytes).max(f64::MIN_POSITIVE)
    };
    let mut hull: Vec<usize> = Vec::new();
    for i in frontier {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            if ratio(a, b) <= ratio(b, i) {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    hull
}

/// Pick one candidate per table minimizing total cost subject to the total
/// footprint staying within `budget_bytes` (`None` = unconstrained).
///
/// The unconstrained path — and any budget the per-table greedy argmin
/// already satisfies — returns exactly the greedy choice, so the existing
/// advisor behaviour is the special case of this selector, not a parallel
/// implementation. A binding budget triggers the knapsack walk described
/// in the module docs.
pub fn select_under_budget(
    tables: &[TableCandidates],
    budget_bytes: Option<f64>,
) -> GlobalSelection {
    let greedy: Vec<usize> = tables
        .iter()
        .map(|t| greedy_choice(&t.candidates))
        .collect();
    let footprint_of = |choice: &[usize]| -> f64 {
        tables
            .iter()
            .zip(choice)
            .map(|(t, &i)| t.candidates[i].footprint_bytes)
            .sum()
    };
    let cost_of = |choice: &[usize]| -> f64 {
        tables
            .iter()
            .zip(choice)
            .map(|(t, &i)| t.candidates[i].cost_ms)
            .sum()
    };
    let disk_of = |choice: &[usize]| -> f64 {
        tables
            .iter()
            .zip(choice)
            .map(|(t, &i)| t.candidates[i].disk_bytes)
            .sum()
    };
    let finish = |choice: Vec<usize>, feasible: bool| -> GlobalSelection {
        GlobalSelection {
            total_cost_ms: cost_of(&choice),
            total_footprint_bytes: footprint_of(&choice),
            total_disk_bytes: disk_of(&choice),
            feasible,
            choice: tables
                .iter()
                .zip(&choice)
                .map(|(t, &i)| (t.table.clone(), i))
                .collect(),
        }
    };
    let budget = match budget_bytes {
        Some(b) if footprint_of(&greedy) > b => b,
        // No budget, or the per-table argmin already fits: the greedy
        // choice IS the answer (the regression-guarded special case).
        _ => return finish(greedy, true),
    };
    // Knapsack walk. Start every table at its smallest-footprint hull
    // candidate and upgrade in global benefit-per-byte order.
    let hulls: Vec<Vec<usize>> = tables
        .iter()
        .map(|t| convex_frontier(&t.candidates))
        .collect();
    let mut pos: Vec<usize> = vec![0; tables.len()]; // position on the hull
    let mut used: f64 = hulls
        .iter()
        .zip(tables)
        .map(|(h, t)| t.candidates[h[0]].footprint_bytes)
        .sum();
    if used > budget {
        let choice: Vec<usize> = hulls.iter().map(|h| h[0]).collect();
        return finish(choice, false);
    }
    // (ratio, table, hull step k): upgrading table from hull[k-1] to
    // hull[k]. Hull convexity makes per-table ratios non-increasing in k,
    // so a global descending-ratio order visits each table's steps in
    // order; a step only applies when its predecessor did.
    let mut steps: Vec<(f64, usize, usize)> = Vec::new();
    for (ti, hull) in hulls.iter().enumerate() {
        for k in 1..hull.len() {
            let a = &tables[ti].candidates[hull[k - 1]];
            let b = &tables[ti].candidates[hull[k]];
            let dfp = b.footprint_bytes - a.footprint_bytes;
            let dcost = a.cost_ms - b.cost_ms;
            steps.push((dcost / dfp.max(f64::MIN_POSITIVE), ti, k));
        }
    }
    steps.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    // Multiple passes: a large skipped step must not forever block the
    // smaller steps ranked below it once budget frees up elsewhere.
    loop {
        let mut progressed = false;
        for &(_, ti, k) in &steps {
            if pos[ti] != k - 1 {
                continue;
            }
            let a = &tables[ti].candidates[hulls[ti][k - 1]];
            let b = &tables[ti].candidates[hulls[ti][k]];
            let dfp = b.footprint_bytes - a.footprint_bytes;
            if used + dfp <= budget {
                used += dfp;
                pos[ti] = k;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let choice: Vec<usize> = hulls.iter().zip(&pos).map(|(h, &p)| h[p]).collect();
    finish(choice, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_catalog::TableStats;
    use proptest::prelude::*;

    fn cand(cost: f64, fp: f64) -> PlacementCandidate {
        PlacementCandidate {
            placement: TablePlacement::Single(StoreKind::Row),
            cost_ms: cost,
            footprint_bytes: fp,
            disk_bytes: 0.0,
        }
    }

    fn table(name: &str, cands: Vec<PlacementCandidate>) -> TableCandidates {
        TableCandidates {
            table: name.into(),
            candidates: cands,
        }
    }

    #[test]
    fn unconstrained_picks_per_table_argmin() {
        let tables = vec![
            table("a", vec![cand(10.0, 100.0), cand(4.0, 900.0)]),
            table("b", vec![cand(3.0, 50.0), cand(7.0, 10.0)]),
        ];
        let sel = select_under_budget(&tables, None);
        assert_eq!(sel.choice["a"], 1);
        assert_eq!(sel.choice["b"], 0);
        assert!(sel.feasible);
        assert_eq!(sel.total_cost_ms, 7.0);
    }

    #[test]
    fn loose_budget_equals_unconstrained() {
        let tables = vec![
            table("a", vec![cand(10.0, 100.0), cand(4.0, 900.0)]),
            table("b", vec![cand(3.0, 50.0), cand(7.0, 10.0)]),
        ];
        let unc = select_under_budget(&tables, None);
        let loose = select_under_budget(&tables, Some(1e12));
        assert_eq!(unc.choice, loose.choice);
    }

    #[test]
    fn binding_budget_takes_best_ratio_first() {
        // Both tables would like their expensive-footprint candidate;
        // budget admits only one. Table a gains 6 ms per 800 bytes
        // (0.0075/byte), table b gains 5 ms per 100 bytes (0.05/byte): b
        // upgrades, a stays.
        let tables = vec![
            table("a", vec![cand(10.0, 100.0), cand(4.0, 900.0)]),
            table("b", vec![cand(8.0, 100.0), cand(3.0, 200.0)]),
        ];
        let sel = select_under_budget(&tables, Some(400.0));
        assert_eq!(sel.choice["a"], 0);
        assert_eq!(sel.choice["b"], 1);
        assert!(sel.feasible);
        assert!(sel.total_footprint_bytes <= 400.0);
        assert_eq!(sel.total_cost_ms, 13.0);
    }

    #[test]
    fn infeasible_budget_returns_min_footprint_assignment() {
        let tables = vec![
            table("a", vec![cand(10.0, 100.0), cand(4.0, 900.0)]),
            table("b", vec![cand(3.0, 50.0)]),
        ];
        let sel = select_under_budget(&tables, Some(120.0));
        assert!(!sel.feasible);
        assert_eq!(sel.choice["a"], 0);
        assert_eq!(sel.choice["b"], 0);
        assert_eq!(sel.total_footprint_bytes, 150.0);
    }

    #[test]
    fn dominated_candidates_never_selected_under_binding_budget() {
        // Candidate 1 is dominated (more bytes, more cost than 2).
        let tables = vec![table(
            "a",
            vec![cand(10.0, 100.0), cand(9.0, 500.0), cand(5.0, 300.0)],
        )];
        let sel = select_under_budget(&tables, Some(350.0));
        assert_eq!(sel.choice["a"], 2);
    }

    #[test]
    fn footprint_orders_row_above_compressed_column() {
        // A 10k-row table with well-compressed columns: the dictionary-
        // coded column store must model smaller than the row store.
        let mut stats = TableStats::empty(3);
        stats.row_count = 10_000;
        for c in &mut stats.columns {
            c.distinct = 100;
            c.compression_rate = 0.99;
        }
        let tctx = TableCtx {
            stats,
            indexed: vec![],
            column_types: vec![ColumnType::BigInt, ColumnType::Varchar, ColumnType::Double],
            pk_columns: vec![0],
            delta_tail: 0,
            observed_tail_rate: None,
        };
        let row = placement_footprint_bytes(&tctx, &TablePlacement::Single(StoreKind::Row));
        let col = placement_footprint_bytes(&tctx, &TablePlacement::Single(StoreKind::Column));
        assert!(
            col < row / 4.0,
            "compressed column store should be much smaller: {col} vs {row}"
        );
        // And a hot/cold split prices between the two pure stores.
        let spec = hsd_catalog::PartitionSpec {
            horizontal: Some(hsd_catalog::HorizontalSpec {
                split_column: 0,
                split_value: hsd_types::Value::BigInt(9_000),
            }),
            vertical: None,
            ..Default::default()
        };
        let mut tctx2 = tctx.clone();
        tctx2.stats.columns[0].min = Some(hsd_types::Value::BigInt(0));
        tctx2.stats.columns[0].max = Some(hsd_types::Value::BigInt(9_999));
        let part = placement_footprint_bytes(&tctx2, &TablePlacement::Partitioned(spec));
        let row2 = placement_footprint_bytes(&tctx2, &TablePlacement::Single(StoreKind::Row));
        let col2 = placement_footprint_bytes(&tctx2, &TablePlacement::Single(StoreKind::Column));
        assert!(part > col2 && part < row2, "{col2} < {part} < {row2}");
    }

    #[test]
    fn disk_tier_moves_cold_bytes_off_the_memory_account() {
        let mut stats = TableStats::empty(3);
        stats.row_count = 10_000;
        for c in &mut stats.columns {
            c.distinct = 100;
            c.compression_rate = 0.99;
        }
        stats.columns[0].min = Some(hsd_types::Value::BigInt(0));
        stats.columns[0].max = Some(hsd_types::Value::BigInt(9_999));
        let tctx = TableCtx {
            stats,
            indexed: vec![],
            column_types: vec![ColumnType::BigInt, ColumnType::Varchar, ColumnType::Double],
            pk_columns: vec![0],
            delta_tail: 0,
            observed_tail_rate: None,
        };
        let spec = |tier: Tier| hsd_catalog::PartitionSpec {
            horizontal: Some(hsd_catalog::HorizontalSpec {
                split_column: 0,
                split_value: hsd_types::Value::BigInt(9_000),
            }),
            vertical: None,
            cold_tier: tier,
        };
        let mem_p = TablePlacement::Partitioned(spec(Tier::Memory));
        let disk_p = TablePlacement::Partitioned(spec(Tier::Disk));
        let mem_fp = placement_footprint_bytes(&tctx, &mem_p);
        let disk_fp = placement_footprint_bytes(&tctx, &disk_p);
        let disk_bytes = placement_disk_bytes(&tctx, &disk_p);
        // Demotion moves the cold fragment's bytes between the accounts
        // without changing their total.
        assert!(disk_fp < mem_fp, "{disk_fp} < {mem_fp}");
        assert!(disk_bytes > 0.0);
        assert!(
            (disk_fp + disk_bytes - mem_fp).abs() < 1e-6,
            "{disk_fp} + {disk_bytes} != {mem_fp}"
        );
        // Memory-tier placements have no disk footprint.
        assert_eq!(placement_disk_bytes(&tctx, &mem_p), 0.0);
        assert_eq!(
            placement_disk_bytes(&tctx, &TablePlacement::Single(StoreKind::Column)),
            0.0
        );
    }

    // --- proptests --------------------------------------------------------

    /// Random candidate lists: 1..=4 tables, 1..=4 candidates each, costs
    /// and footprints drawn from a wide positive range.
    fn arb_tables() -> impl Strategy<Value = Vec<TableCandidates>> {
        any::<u64>().prop_map(|seed| {
            let mut x = seed | 1;
            let n = (seed % 4 + 1) as usize;
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            (0..n)
                .map(|t| {
                    let k = (next() % 4 + 1) as usize;
                    table(
                        &format!("t{t}"),
                        (0..k)
                            .map(|_| {
                                cand((next() % 10_000) as f64 / 10.0, (next() % 100_000) as f64)
                            })
                            .collect(),
                    )
                })
                .collect()
        })
    }

    proptest! {
        /// Regression guard for the refactor: with no budget, the global
        /// selection is exactly the per-table greedy argmin.
        #[test]
        fn unconstrained_equals_greedy(tables in arb_tables()) {
            let sel = select_under_budget(&tables, None);
            for t in &tables {
                let g = greedy_choice(&t.candidates);
                prop_assert_eq!(sel.choice[&t.table], g);
            }
            prop_assert!(sel.feasible);
        }

        /// The budget is a hard cap whenever it is satisfiable at all.
        #[test]
        fn selection_respects_budget(tables in arb_tables(), raw in 0u64..1_000_000) {
            let min_fp: f64 = tables
                .iter()
                .map(|t| {
                    t.candidates
                        .iter()
                        .map(|c| c.footprint_bytes)
                        .fold(f64::INFINITY, f64::min)
                })
                .sum();
            let budget = raw as f64;
            let sel = select_under_budget(&tables, Some(budget));
            if min_fp <= budget {
                prop_assert!(sel.feasible);
                prop_assert!(
                    sel.total_footprint_bytes <= budget + 1e-9,
                    "footprint {} exceeds budget {}",
                    sel.total_footprint_bytes,
                    budget
                );
            } else {
                prop_assert!(!sel.feasible);
            }
            // A tighter budget never selects a cheaper set than a looser one.
            let unc = select_under_budget(&tables, None);
            prop_assert!(sel.total_cost_ms >= unc.total_cost_ms - 1e-9);
        }
    }
}
