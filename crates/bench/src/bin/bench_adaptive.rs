//! Self-calibration ablation, recorded as `BENCH_adaptive.json`.
//!
//! Both arms start from the *same deliberately stale* cost model — the
//! row store's scan scaling (`row.f_rows`) divided by 8, simulating a
//! model calibrated on much faster scan hardware — and run the same
//! two-phase workload on identical data seeded into the row store:
//!
//! * **phase 1** — primary-key point lookups (the row store is genuinely
//!   optimal, and the stale model agrees: both arms sit still);
//! * **phase 2** — unfiltered SUM scans (the column store is genuinely
//!   optimal, but the stale model prices row scans ~8× too cheap, so a
//!   static advisor keeps the table in the row store forever).
//!
//! The **static** arm runs with `self_calibrating` off: the drift gauge
//! still accumulates the predicted-vs-measured residuals, but the model is
//! frozen. The **self-calibrating** arm re-fits drifted coefficient
//! families online (clamped ×2 steps, so the 8× gap closes over ~3
//! calibration ticks), the above-threshold drift forces a re-plan, and the
//! advisor flips the table to the column store mid-phase.
//!
//! Acceptance: the self-calibrating arm's *measured* phase-2 time beats the
//! static arm's by ≥ 1.2×, and its post-shift drift gauge ends lower.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_adaptive`
//! (`-- --smoke` for the small CI configuration).

use std::time::Instant;

use hsd_core::{CostModel, OnlineAdvisor, OnlineConfig, StorageAdvisor};
use hsd_engine::{HybridDatabase, MergeConfig};
use hsd_query::{AggFunc, Aggregate, AggregateQuery, Query, SelectQuery, TableSpec};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{Json, Value};

/// The staleness factor: row-store scan costs are priced this many times
/// too cheap. Recovery needs `log2(8) = 3` clamped re-fit steps.
const STALE_FACTOR: f64 = 8.0;

struct Scale {
    rows: usize,
    point_statements: usize,
    scan_statements: usize,
    smoke: bool,
}

impl Scale {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        if smoke {
            Scale {
                rows: 20_000,
                point_statements: 150,
                scan_statements: 300,
                smoke: true,
            }
        } else {
            Scale {
                rows: 100_000,
                point_statements: 400,
                scan_statements: 600,
                smoke: false,
            }
        }
    }
}

fn spec(rows: usize) -> TableSpec {
    TableSpec::paper_wide("a", rows, 0xADA7)
}

fn build_db(s: &TableSpec) -> HybridDatabase {
    let db = HybridDatabase::new();
    db.create_single(s.schema().expect("schema"), StoreKind::Row)
        .expect("create");
    db.bulk_load(&s.name, s.rows()).expect("load");
    // No writes in this workload; park the merge scheduler anyway so both
    // arms execute exactly the same engine work.
    db.set_merge_config(MergeConfig::disabled());
    db
}

/// The stale model: row scans priced `STALE_FACTOR`× too cheap. Only the
/// coefficient family the scan phase actually exercises is perturbed, so
/// the re-fit loop can fully repair it from observed residuals.
fn stale_model(mut m: CostModel) -> CostModel {
    m.row.f_rows = m.row.f_rows.scaled(1.0 / STALE_FACTOR);
    m
}

/// Phase 1: primary-key point lookups (classified `OpClass::Point`).
fn point_queries(s: &TableSpec, n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            Query::Select(SelectQuery {
                table: s.name.clone(),
                columns: Some(vec![s.kf_col(0)]),
                filter: vec![ColRange::eq(0, Value::BigInt(((i * 73) % s.rows) as i64))],
            })
        })
        .collect()
}

/// Phase 2: unfiltered SUM scans (classified `OpClass::Scan`).
fn scan_queries(s: &TableSpec, n: usize) -> Vec<Query> {
    let q = Query::Aggregate(AggregateQuery {
        table: s.name.clone(),
        aggregates: vec![Aggregate {
            func: AggFunc::Sum,
            column: s.kf_col(0),
        }],
        group_by: None,
        filter: vec![],
        join: None,
    });
    vec![q; n]
}

struct ArmResult {
    name: &'static str,
    phase1_ms: f64,
    phase2_ms: f64,
    drift: f64,
    refit_versions: u64,
    replans: usize,
    final_placement: String,
}

impl ArmResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("arm", Json::Str(self.name.to_string())),
            ("phase1_ms", Json::Num(self.phase1_ms)),
            ("phase2_ms", Json::Num(self.phase2_ms)),
            ("drift", Json::Num(self.drift)),
            ("model_refits", Json::Int(self.refit_versions as i64)),
            ("replans", Json::Int(self.replans as i64)),
            ("final_placement", Json::Str(self.final_placement.clone())),
        ])
    }
}

fn run_arm(
    name: &'static str,
    s: &TableSpec,
    model: CostModel,
    self_calibrating: bool,
) -> ArmResult {
    let scale = Scale::from_args();
    let db = build_db(s);
    let mut online = OnlineAdvisor::new(
        StorageAdvisor::new(model),
        OnlineConfig {
            evaluation_interval: 100,
            calibration_interval: 32,
            self_calibrating,
            // Single table, no writes: partitioning and merge scheduling
            // only add search noise to the placement comparison.
            enable_partitioning: false,
            enable_maintenance: false,
            window_capacity: 400,
            ..Default::default()
        },
    );
    let mut replans = 0usize;
    let mut run_phase = |queries: Vec<Query>, online: &mut OnlineAdvisor| -> f64 {
        let mut total_ms = 0.0;
        for q in queries {
            let start = Instant::now();
            std::hint::black_box(db.execute(&q).expect("execute"));
            let ms = start.elapsed().as_secs_f64() * 1e3;
            total_ms += ms;
            if let Some(rec) = online.observe_timed(&db, &q, ms).expect("observe") {
                online.apply(&db, &rec).expect("apply");
                replans += 1;
            }
        }
        total_ms
    };
    let phase1_ms = run_phase(point_queries(s, scale.point_statements), &mut online);
    let phase2_ms = run_phase(scan_queries(s, scale.scan_statements), &mut online);
    ArmResult {
        name,
        phase1_ms,
        phase2_ms,
        drift: online.drift_gauge().overall,
        refit_versions: online.model_version(),
        replans,
        final_placement: db.current_layout().placement(&s.name).describe(),
    }
}

fn main() {
    let scale = Scale::from_args();
    let s = spec(scale.rows);
    eprintln!(
        "[bench_adaptive] {} rows, {} point + {} scan statements{}",
        scale.rows,
        scale.point_statements,
        scale.scan_statements,
        if scale.smoke { " (smoke)" } else { "" }
    );
    let model = stale_model(hsd_bench::advisor_model_or_calibrate(
        "bench_adaptive",
        scale.smoke,
    ));

    let arms = [
        run_arm("static", &s, model.clone(), false),
        run_arm("self-calibrating", &s, model, true),
    ];
    for a in &arms {
        eprintln!(
            "[bench_adaptive] {:<16} phase1 {:>8.1} ms  phase2 {:>8.1} ms  \
             drift {:.3}  refits {}  replans {}  -> {}",
            a.name,
            a.phase1_ms,
            a.phase2_ms,
            a.drift,
            a.refit_versions,
            a.replans,
            a.final_placement
        );
    }
    let stat = &arms[0];
    let adap = &arms[1];
    let speedup = stat.phase2_ms / adap.phase2_ms;
    let drift_lower = adap.drift < stat.drift;
    let pass = speedup >= 1.2 && drift_lower;
    eprintln!(
        "[bench_adaptive] post-shift speedup {speedup:.2}x, drift {:.3} vs {:.3} -> {}",
        adap.drift,
        stat.drift,
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("benchmark", Json::Str("adaptive_costmodel".to_string())),
        ("rows", Json::Int(scale.rows as i64)),
        ("point_statements", Json::Int(scale.point_statements as i64)),
        ("scan_statements", Json::Int(scale.scan_statements as i64)),
        ("stale_factor", Json::Num(STALE_FACTOR)),
        ("smoke", Json::Bool(scale.smoke)),
        (
            "arms",
            Json::Arr(arms.iter().map(ArmResult::to_json).collect()),
        ),
        (
            "adaptive_speedup",
            hsd_bench::ratio_json(stat.phase2_ms, adap.phase2_ms),
        ),
        ("static_model_drift", Json::Num(stat.drift)),
        ("self_calibrating_drift", Json::Num(adap.drift)),
        ("pass", Json::Bool(pass)),
    ]);
    std::fs::write("BENCH_adaptive.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_adaptive.json");
    eprintln!("[bench_adaptive] wrote BENCH_adaptive.json");
    if !pass {
        std::process::exit(1);
    }
}
