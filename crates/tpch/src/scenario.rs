//! Deterministic HTAP scenario driver: multi-tenant mixed workloads.
//!
//! A *scenario* composes the crate's OLTP point writes and OLAP scans over
//! per-tenant copies of the TPC-H tables, in the style of the CH-benCHmark:
//! every tenant owns a renamed copy of the eight tables (`t3_orders`, ...)
//! and a scheduler decides, slot by slot, which tenant runs which kind of
//! statement. The scheduler is a pure function of the scenario
//! configuration and its seed, so the same [`ScenarioConfig`] always yields
//! a byte-identical statement stream ([`MixedWorkload::render`]) — the
//! driver doubles as a reproducible test harness, not just a benchmark.
//!
//! The named scenarios stress the advisor in distinct ways:
//!
//! | scenario      | pressure                                             |
//! |---------------|------------------------------------------------------|
//! | `uniform`     | baseline: tenants drawn uniformly                    |
//! | `zipf-skew`   | Zipfian tenant popularity (hot tenants dominate)     |
//! | `flash-crowd` | mid-run OLTP burst concentrated on tenant 0          |
//! | `phase-shift` | OLTP-heavy first half, OLAP-heavy second half        |
//! | `tenant-churn`| sliding window of active tenants (arrivals/departures)|

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hsd_catalog::TablePlacement;
use hsd_engine::HybridDatabase;
use hsd_query::{Query, Workload};
use hsd_types::Result;

use crate::gen::TpchGenerator;
use crate::schema;
use crate::workload::{generate_workload, TpchWorkloadConfig};

/// The named scenarios of the HTAP matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Tenants drawn uniformly; the mixed-fraction baseline.
    Uniform,
    /// Zipfian tenant popularity: low-index tenants absorb most traffic.
    ZipfSkew,
    /// A burst window where tenant 0 absorbs most traffic, OLTP-heavy.
    FlashCrowd,
    /// OLTP-dominated first half, OLAP-dominated second half.
    PhaseShift,
    /// Only a sliding window of tenants is active at any point in the run.
    TenantChurn,
}

impl Scenario {
    /// All scenarios, stable order (the test matrix iterates this).
    pub const ALL: [Scenario; 5] = [
        Scenario::Uniform,
        Scenario::ZipfSkew,
        Scenario::FlashCrowd,
        Scenario::PhaseShift,
        Scenario::TenantChurn,
    ];

    /// Kebab-case name used in rendered streams and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Uniform => "uniform",
            Scenario::ZipfSkew => "zipf-skew",
            Scenario::FlashCrowd => "flash-crowd",
            Scenario::PhaseShift => "phase-shift",
            Scenario::TenantChurn => "tenant-churn",
        }
    }
}

/// Scenario settings. Everything that shapes the stream lives here so the
/// stream is replayable from this value alone.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Which scheduler to run.
    pub scenario: Scenario,
    /// Number of tenants (each owns a full renamed TPC-H table set).
    pub tenants: usize,
    /// Total statements in the stream.
    pub statements: usize,
    /// Baseline fraction of OLAP statements (scenarios modulate this).
    pub olap_fraction: f64,
    /// Zipf exponent for skewed tenant selection (1.0 = classic Zipf).
    pub zipf_theta: f64,
    /// Master seed; every derived stream seed is a pure function of it.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            scenario: Scenario::Uniform,
            tenants: 3,
            statements: 400,
            olap_fraction: 0.08,
            zipf_theta: 1.0,
            seed: 0x5EED_0008,
        }
    }
}

/// One scheduled statement: which tenant it belongs to and the query.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedStatement {
    /// Tenant index in `0..tenants`.
    pub tenant: usize,
    /// The query, already renamed onto the tenant's tables.
    pub query: Query,
}

/// A fully materialized scenario run: the replayable statement stream.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// The scenario that produced the stream.
    pub scenario: Scenario,
    /// The master seed (documented in [`render`](Self::render) output so
    /// bench runs are reproducible).
    pub seed: u64,
    /// Tenant count.
    pub tenants: usize,
    /// The scheduled statements, in execution order.
    pub statements: Vec<MixedStatement>,
}

impl MixedWorkload {
    /// Render the stream as text: a header documenting scenario and seed,
    /// then one line per statement. Two runs from the same config must
    /// produce byte-identical output — the determinism tests compare this.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# scenario: {}\n", self.scenario.name()));
        out.push_str(&format!("# seed: {}\n", self.seed));
        out.push_str(&format!("# tenants: {}\n", self.tenants));
        out.push_str(&format!("# statements: {}\n", self.statements.len()));
        for (i, s) in self.statements.iter().enumerate() {
            out.push_str(&format!("{i}\t{}\t{:?}\n", s.tenant, s.query));
        }
        out
    }

    /// FNV-1a digest of the rendered stream; recorded in bench artifacts
    /// so a run's exact workload is identifiable.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// The stream as an advisor-facing [`Workload`] (tenant tags dropped).
    pub fn workload(&self) -> Workload {
        Workload::from_queries(self.statements.iter().map(|s| s.query.clone()).collect())
    }
}

/// Name of tenant `t`'s copy of base table `base` (`t2_orders`).
pub fn tenant_table(tenant: usize, base: &str) -> String {
    format!("t{tenant}_{base}")
}

/// All table names across `tenants` tenants, tenant-major order.
pub fn tenant_tables(tenants: usize) -> Vec<String> {
    let mut names = Vec::with_capacity(tenants * schema::TABLE_NAMES.len());
    for t in 0..tenants {
        for base in schema::TABLE_NAMES {
            names.push(tenant_table(t, base));
        }
    }
    names
}

/// Create and load every tenant's table set into `db`. Each tenant gets the
/// same generated data (the scheduler, not the data, differentiates them).
pub fn load_tenants(
    g: &TpchGenerator,
    db: &HybridDatabase,
    tenants: usize,
    placement_of: impl Fn(&str) -> TablePlacement,
) -> Result<()> {
    for t in 0..tenants {
        for mut s in schema::all()? {
            s.name = tenant_table(t, &s.name);
            let name = s.name.clone();
            db.create_table(s, placement_of(&name))?;
        }
        let load = |base: &str, rows: &mut dyn Iterator<Item = Vec<hsd_types::Value>>| {
            db.bulk_load(&tenant_table(t, base), rows)
        };
        load("region", &mut (0..5).map(|i| g.region_row(i)))?;
        load("nation", &mut (0..25).map(|i| g.nation_row(i)))?;
        load(
            "supplier",
            &mut (0..g.suppliers() as u64).map(|i| g.supplier_row(i)),
        )?;
        load(
            "customer",
            &mut (0..g.customers() as u64).map(|i| g.customer_row(i)),
        )?;
        load("part", &mut (0..g.parts() as u64).map(|i| g.part_row(i)))?;
        load(
            "partsupp",
            &mut (0..g.partsupps() as u64).map(|i| g.partsupp_row(i)),
        )?;
        load(
            "orders",
            &mut (0..g.orders() as u64).map(|i| g.orders_row(i)),
        )?;
        load("lineitem", &mut g.lineitem_rows())?;
    }
    Ok(())
}

/// splitmix64: derives independent per-stream seeds from the master seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Zipf CDF over `n` ranks with exponent `theta`.
fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for i in 0..n {
        acc += 1.0 / ((i + 1) as f64).powf(theta);
        cdf.push(acc);
    }
    let norm = acc;
    for c in &mut cdf {
        *c /= norm;
    }
    cdf
}

fn zipf_pick(cdf: &[f64], u: f64) -> usize {
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

/// Rename a base-schema query onto tenant `t`'s tables (join dimension
/// tables included).
fn rename_for_tenant(q: &mut Query, t: usize) {
    match q {
        Query::Aggregate(a) => {
            a.table = tenant_table(t, &a.table);
            if let Some(j) = &mut a.join {
                j.dim_table = tenant_table(t, &j.dim_table);
            }
        }
        Query::Select(s) => s.table = tenant_table(t, &s.table),
        Query::Insert(i) => i.table = tenant_table(t, &i.table),
        Query::Update(u) => u.table = tenant_table(t, &u.table),
    }
}

/// Per-tenant statement source: pre-generated OLTP-only and OLAP-only
/// streams, popped by the scheduler. Streams are sized to the full run so
/// they never wrap (wrapping would replay insert keys).
struct TenantStreams {
    oltp: Vec<Query>,
    olap: Vec<Query>,
    oltp_pos: usize,
    olap_pos: usize,
}

impl TenantStreams {
    fn pop(&mut self, olap: bool) -> Query {
        let (stream, pos) = if olap {
            (&self.olap, &mut self.olap_pos)
        } else {
            (&self.oltp, &mut self.oltp_pos)
        };
        let q = stream[*pos % stream.len()].clone();
        *pos += 1;
        q
    }
}

/// Generate the statement stream for one scenario. Pure function of
/// `(g, cfg)`: the same inputs always produce the same stream.
pub fn generate_scenario(g: &TpchGenerator, cfg: &ScenarioConfig) -> MixedWorkload {
    assert!(cfg.tenants > 0, "scenario needs at least one tenant");
    let mut streams: Vec<TenantStreams> = (0..cfg.tenants)
        .map(|t| {
            let mk = |olap_fraction: f64, salt: u64| {
                let wl = generate_workload(
                    g,
                    &TpchWorkloadConfig {
                        queries: cfg.statements,
                        olap_fraction,
                        recent_update_bias: 0.6,
                        seed: splitmix(cfg.seed ^ salt.wrapping_mul(0x9E37).wrapping_add(t as u64)),
                    },
                );
                let mut qs = wl.queries;
                for q in &mut qs {
                    rename_for_tenant(q, t);
                }
                qs
            };
            TenantStreams {
                oltp: mk(0.0, 0x01),
                olap: mk(1.0, 0x02),
                oltp_pos: 0,
                olap_pos: 0,
            }
        })
        .collect();

    let cdf = zipf_cdf(cfg.tenants, cfg.zipf_theta);
    let churn_window = cfg.tenants.div_ceil(2).max(1);
    let mut rng = SmallRng::seed_from_u64(splitmix(cfg.seed ^ 0x0D21_BE55));
    let n = cfg.statements;
    let mut statements = Vec::with_capacity(n);
    for i in 0..n {
        let progress = i as f64 / n.max(1) as f64;
        let (tenant, olap_p) = match cfg.scenario {
            Scenario::Uniform => (rng.gen_range(0..cfg.tenants), cfg.olap_fraction),
            Scenario::ZipfSkew => (zipf_pick(&cdf, rng.gen::<f64>()), cfg.olap_fraction),
            Scenario::FlashCrowd => {
                let burst = (0.40..0.55).contains(&progress);
                if burst {
                    let tenant = if rng.gen_bool(0.85) {
                        0
                    } else {
                        rng.gen_range(0..cfg.tenants)
                    };
                    (tenant, cfg.olap_fraction * 0.25)
                } else {
                    (rng.gen_range(0..cfg.tenants), cfg.olap_fraction)
                }
            }
            Scenario::PhaseShift => {
                let olap_p = if progress < 0.5 {
                    cfg.olap_fraction * 0.2
                } else {
                    (cfg.olap_fraction * 4.0).min(0.9)
                };
                (rng.gen_range(0..cfg.tenants), olap_p)
            }
            Scenario::TenantChurn => {
                let start = (progress * cfg.tenants as f64) as usize % cfg.tenants;
                let tenant = (start + rng.gen_range(0..churn_window)) % cfg.tenants;
                (tenant, cfg.olap_fraction)
            }
        };
        let olap = rng.gen_bool(olap_p.clamp(0.0, 1.0));
        statements.push(MixedStatement {
            tenant,
            query: streams[tenant].pop(olap),
        });
    }
    MixedWorkload {
        scenario: cfg.scenario,
        seed: cfg.seed,
        tenants: cfg.tenants,
        statements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpchGenerator {
        TpchGenerator::new(0.0005, 7)
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let g = tiny();
        for scenario in Scenario::ALL {
            let cfg = ScenarioConfig {
                scenario,
                statements: 120,
                ..ScenarioConfig::default()
            };
            let a = generate_scenario(&g, &cfg).render();
            let b = generate_scenario(&g, &cfg).render();
            assert_eq!(a, b, "{} not deterministic", scenario.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = tiny();
        let cfg = ScenarioConfig {
            statements: 120,
            ..ScenarioConfig::default()
        };
        let a = generate_scenario(&g, &cfg);
        let b = generate_scenario(
            &g,
            &ScenarioConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        assert_ne!(a.render(), b.render());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn seed_documented_in_output() {
        let g = tiny();
        let cfg = ScenarioConfig {
            statements: 16,
            ..ScenarioConfig::default()
        };
        let text = generate_scenario(&g, &cfg).render();
        assert!(text.contains(&format!("# seed: {}", cfg.seed)));
        assert!(text.contains("# scenario: uniform"));
    }

    #[test]
    fn zipf_concentrates_on_low_tenants() {
        let g = tiny();
        let cfg = ScenarioConfig {
            scenario: Scenario::ZipfSkew,
            tenants: 4,
            statements: 400,
            ..ScenarioConfig::default()
        };
        let wl = generate_scenario(&g, &cfg);
        let mut counts = vec![0usize; cfg.tenants];
        for s in &wl.statements {
            counts[s.tenant] += 1;
        }
        assert!(
            counts[0] > counts[cfg.tenants - 1],
            "zipf should favor tenant 0: {counts:?}"
        );
    }

    #[test]
    fn phase_shift_changes_olap_density() {
        let g = tiny();
        let cfg = ScenarioConfig {
            scenario: Scenario::PhaseShift,
            statements: 400,
            olap_fraction: 0.2,
            ..ScenarioConfig::default()
        };
        let wl = generate_scenario(&g, &cfg);
        let half = wl.statements.len() / 2;
        let olap_count = |slice: &[MixedStatement]| {
            slice
                .iter()
                .filter(|s| matches!(s.query, Query::Aggregate(_)))
                .count()
        };
        let first = olap_count(&wl.statements[..half]);
        let second = olap_count(&wl.statements[half..]);
        assert!(
            second > first * 2,
            "phase shift should move OLAP to the second half ({first} vs {second})"
        );
    }

    #[test]
    fn statements_stay_on_tenant_tables() {
        let g = tiny();
        let cfg = ScenarioConfig {
            statements: 60,
            ..ScenarioConfig::default()
        };
        let wl = generate_scenario(&g, &cfg);
        for s in &wl.statements {
            let prefix = format!("t{}_", s.tenant);
            assert!(
                s.query.table().starts_with(&prefix),
                "{} not on tenant {}",
                s.query.table(),
                s.tenant
            );
        }
    }
}
