//! Lightweight identifier newtypes.

use std::fmt;

/// Identifier of a table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TableId(pub u32);

impl TableId {
    /// Numeric value of the id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Zero-based index of a column within its table's schema.
///
/// Columns are addressed positionally throughout the engine; names are
/// resolved once at query-construction time.
pub type ColumnIdx = usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_id_display_and_index() {
        let id = TableId(7);
        assert_eq!(id.to_string(), "t7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn table_id_ordering() {
        assert!(TableId(1) < TableId(2));
        assert_eq!(TableId::default(), TableId(0));
    }
}
