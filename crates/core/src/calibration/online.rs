//! Online self-calibration: continuous re-fitting of the cost model from
//! observed predicted-vs-measured residuals.
//!
//! The offline mode ([`crate::calibration::calibrate`]) fits the model once,
//! against synthetic tables, on whatever hardware happened to run it. The
//! paper's online working mode keeps *statistics* fresh but leaves the model
//! frozen — so a model calibrated on different hardware, or before a phase
//! change shifted the workload into operating regions the micro-benchmarks
//! never exercised, silently misprices every placement decision downstream.
//!
//! This module closes that loop. Each executed query yields one
//! [`hsd_engine::TimingSample`] pairing the model's prediction with the
//! measured wall clock; the [`OnlineCalibrator`] buckets the log-ratio
//! residuals `ln(measured / predicted)` by **coefficient family** (the group
//! of model terms that dominated the prediction), maintains an exponentially
//! decayed fit per family, and on request re-fits the drifted families
//! through a [`ModelHandle`] — shape-preserving multiplicative steps,
//! clamped per re-fit so one noisy interval can never whipsaw the model.
//!
//! Two read-only signals ride on the same sample stream:
//!
//! * the **drift gauge** ([`OnlineCalibrator::gauge`]): the decayed mean
//!   absolute log residual, overall and per family — "how wrong is the
//!   model right now", the operator-facing health metric;
//! * the **phase detector** ([`OnlineCalibrator::take_phase_shift`]): a
//!   fast/slow EMA pair over the workload's scan share that fires when the
//!   workload regime shifts faster than the slow average can follow — the
//!   re-planning trigger that does not wait for coefficients to drift.

use std::collections::BTreeMap;

use hsd_engine::{MergeSliceSample, OpClass, TimingSample};
use hsd_storage::StoreKind;

use crate::cost::{AdjustmentFn, CostModel, ModelHandle};

/// Residuals are clamped to `±LN_CLAMP` before entering a fit: a single
/// pathological sample (scheduler stall, cold cache) is evidence of *some*
/// drift, not of a 100x one.
const LN_CLAMP: f64 = 5.0;

/// Settings of the [`OnlineCalibrator`].
#[derive(Debug, Clone)]
pub struct OnlineCalibratorConfig {
    /// Per-sample decay of each family's sufficient statistics (`0.98`
    /// halves a sample's weight after ~34 successors): recent residuals
    /// dominate, stale hardware conditions age out.
    pub decay: f64,
    /// Maximum multiplicative step per family per re-fit; the applied
    /// factor is clamped to `[1/max_step, max_step]`. Persistent drift
    /// converges over a few re-fits; noise cannot overshoot.
    pub max_step: f64,
    /// Minimum raw samples a family must collect since its last re-fit
    /// before it is eligible again.
    pub min_samples: usize,
    /// Dead-band on the mean log residual: families within
    /// `exp(±deadband)` of perfect are left alone (re-fitting into noise
    /// churns model versions for nothing).
    pub deadband: f64,
    /// Column-store scans whose tail fraction is at least this are
    /// attributed to the [`CoefFamily::Tail`] family instead of
    /// [`CoefFamily::Scan`] — separating "the scan term is wrong" from
    /// "the tail-degradation term is wrong".
    pub tail_min_frac: f64,
    /// Phase-change detector settings.
    pub phase: PhaseConfig,
}

impl Default for OnlineCalibratorConfig {
    fn default() -> Self {
        OnlineCalibratorConfig {
            decay: 0.98,
            max_step: 2.0,
            min_samples: 24,
            deadband: 0.05f64.ln_1p(), // ln(1.05): within 5 % is "calibrated"
            tail_min_frac: 0.02,
            phase: PhaseConfig::default(),
        }
    }
}

/// Settings of the workload phase-change detector: a fast/slow EMA pair
/// over the per-statement scan share (the same exponential-decay predictor
/// shape [`crate::online::OnlineConfig::scan_rate_decay`] uses for merge
/// accrual, applied to regime detection).
#[derive(Debug, Clone)]
pub struct PhaseConfig {
    /// Weight of the newest statement in the fast EMA (the "now" estimate).
    pub fast: f64,
    /// Weight of the newest statement in the slow EMA (the "recent past").
    pub slow: f64,
    /// Fire when `|fast − slow|` exceeds this scan-share gap.
    pub threshold: f64,
    /// Statements observed before the detector may fire (both EMAs seed
    /// from the first sample, so early gaps are startup noise).
    pub min_samples: u64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            fast: 0.25,
            slow: 0.03,
            threshold: 0.25,
            min_samples: 64,
        }
    }
}

/// A group of cost-model coefficients re-fit as one unit. Mirrors
/// [`OpClass`]: each observed sample's residual is attributed to the family
/// whose terms dominated its prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CoefFamily {
    /// Unfiltered scan-type reads: the store's `f_rows` function.
    Scan(StoreKind),
    /// Filtered/joined reads: the store's locate terms
    /// (`sel_per_row_scan`, `sel_per_row_indexed`, `sel_per_match`).
    FilteredScan(StoreKind),
    /// Primary-key point lookups: the store's `sel_point_ms`.
    Point(StoreKind),
    /// Inserts: the store's `ins_row` function.
    Insert(StoreKind),
    /// Updates: the store's `upd_row_ms`.
    Update(StoreKind),
    /// Tail-degraded column scans: the excess of `f_tail` above 1.
    Tail,
    /// Delta-merge slices: the column store's `merge_ms` function.
    Merge,
}

impl CoefFamily {
    /// Stable snake_case label (report keys, bench JSON).
    pub fn label(&self) -> String {
        fn store(s: StoreKind) -> &'static str {
            match s {
                StoreKind::Row => "row",
                StoreKind::Column => "column",
            }
        }
        match self {
            CoefFamily::Scan(s) => format!("scan_{}", store(*s)),
            CoefFamily::FilteredScan(s) => format!("filtered_scan_{}", store(*s)),
            CoefFamily::Point(s) => format!("point_{}", store(*s)),
            CoefFamily::Insert(s) => format!("insert_{}", store(*s)),
            CoefFamily::Update(s) => format!("update_{}", store(*s)),
            CoefFamily::Tail => "tail".to_string(),
            CoefFamily::Merge => "merge".to_string(),
        }
    }
}

/// Exponentially decayed sufficient statistics of one family's log
/// residuals.
#[derive(Debug, Clone, Copy, Default)]
struct DecayedFit {
    /// Total decayed weight.
    w: f64,
    /// Decayed sum of residuals (signed: the bias the re-fit corrects).
    sy: f64,
    /// Decayed sum of absolute residuals (the drift gauge's numerator).
    s_abs: f64,
    /// Raw samples since the family's last re-fit.
    n: u64,
}

impl DecayedFit {
    fn observe(&mut self, decay: f64, y: f64) {
        self.w *= decay;
        self.sy *= decay;
        self.s_abs *= decay;
        self.w += 1.0;
        self.sy += y;
        self.s_abs += y.abs();
        self.n += 1;
    }

    fn mean(&self) -> f64 {
        if self.w > 0.0 {
            self.sy / self.w
        } else {
            0.0
        }
    }

    fn drift(&self) -> f64 {
        if self.w > 0.0 {
            self.s_abs / self.w
        } else {
            0.0
        }
    }
}

/// One family's entry in the [`DriftGauge`].
#[derive(Debug, Clone)]
pub struct FamilyDrift {
    /// The coefficient family.
    pub family: CoefFamily,
    /// Decayed mean absolute log residual (`0.69` ≈ off by 2x).
    pub drift: f64,
    /// Decayed mean *signed* log residual: positive means the model
    /// under-predicts (measured slower than modeled).
    pub bias: f64,
    /// Raw samples since the family's last re-fit.
    pub samples: u64,
}

/// The modeled-vs-measured drift gauge: how far current predictions are
/// from current measurements, per coefficient family and overall.
#[derive(Debug, Clone, Default)]
pub struct DriftGauge {
    /// Weight-averaged mean absolute log residual across all families.
    /// `0.0` = perfectly calibrated; `ln(2) ≈ 0.69` = typically off by 2x.
    pub overall: f64,
    /// Per-family breakdown, sorted by family.
    pub families: Vec<FamilyDrift>,
}

/// What one [`OnlineCalibrator::refit_into`] call changed.
#[derive(Debug, Clone)]
pub struct RefitReport {
    /// The model version the re-fit published.
    pub version: u64,
    /// Overall drift gauge immediately before the re-fit (the signal
    /// strength that justified it).
    pub drift_before: f64,
    /// Families adjusted, with the multiplicative factor applied to each.
    pub adjusted: Vec<(CoefFamily, f64)>,
    /// Set when the merge family was *bootstrapped* rather than scaled:
    /// the model had no measurable merge cost (neutral/zero `merge_ms`),
    /// so it was seeded as a fresh linear fit with this slope (ms per
    /// remapped row).
    pub bootstrapped_merge_ms_per_row: Option<f64>,
}

/// Fast/slow EMA pair over the scan share of the observed statement
/// stream; fires on a regime shift.
#[derive(Debug, Clone)]
struct PhaseDetector {
    cfg: PhaseConfig,
    fast: f64,
    slow: f64,
    samples: u64,
    fired: bool,
}

impl PhaseDetector {
    fn new(cfg: PhaseConfig) -> Self {
        PhaseDetector {
            cfg,
            fast: 0.0,
            slow: 0.0,
            samples: 0,
            fired: false,
        }
    }

    fn observe(&mut self, is_scan: bool) {
        let x = if is_scan { 1.0 } else { 0.0 };
        if self.samples == 0 {
            self.fast = x;
            self.slow = x;
        } else {
            self.fast += self.cfg.fast * (x - self.fast);
            self.slow += self.cfg.slow * (x - self.slow);
        }
        self.samples += 1;
        if self.samples >= self.cfg.min_samples
            && (self.fast - self.slow).abs() > self.cfg.threshold
        {
            self.fired = true;
        }
    }

    fn take(&mut self) -> bool {
        if self.fired {
            self.fired = false;
            // Accept the new regime as the baseline, so the detector
            // re-arms for the *next* shift instead of refiring on this one.
            self.slow = self.fast;
            true
        } else {
            false
        }
    }
}

/// The online calibrator: ingests observed timing samples, tracks drift per
/// coefficient family, and re-fits drifted families through a
/// [`ModelHandle`].
#[derive(Debug)]
pub struct OnlineCalibrator {
    cfg: OnlineCalibratorConfig,
    fits: BTreeMap<CoefFamily, DecayedFit>,
    phase: PhaseDetector,
    /// Decayed merge-slice totals used only to *bootstrap* `merge_ms` when
    /// the model prices merges at ~0 (a log ratio is undefined there).
    merge_boot_ms: f64,
    merge_boot_rows: f64,
    merge_boot_n: u64,
}

impl OnlineCalibrator {
    /// Calibrator with the given settings.
    pub fn new(cfg: OnlineCalibratorConfig) -> Self {
        let phase = PhaseDetector::new(cfg.phase.clone());
        OnlineCalibrator {
            cfg,
            fits: BTreeMap::new(),
            phase,
            merge_boot_ms: 0.0,
            merge_boot_rows: 0.0,
            merge_boot_n: 0,
        }
    }

    /// Ingest one observed query timing. Feeds the family fit the sample's
    /// residual and the phase detector its operator class.
    pub fn ingest(&mut self, s: &TimingSample) {
        self.phase
            .observe(matches!(s.op, OpClass::Scan | OpClass::FilteredScan));
        if s.predicted_ms <= 0.0 || s.measured_ms <= 0.0 {
            // No ratio to learn from (an unpriced path or a sub-resolution
            // measurement); the sample still moved the phase detector.
            return;
        }
        let family = self.classify(s);
        let y = (s.measured_ms / s.predicted_ms)
            .ln()
            .clamp(-LN_CLAMP, LN_CLAMP);
        self.fits
            .entry(family)
            .or_default()
            .observe(self.cfg.decay, y);
    }

    /// Ingest one merge slice's measured cost, paired with the model's
    /// prediction for remapping that many rows. A near-zero prediction
    /// (neutral model) feeds the bootstrap accumulator instead of a ratio
    /// fit.
    pub fn ingest_merge(&mut self, s: &MergeSliceSample, predicted_ms: f64) {
        let measured_ms = s.elapsed_ns as f64 / 1e6;
        if s.rows_remapped == 0 {
            return;
        }
        if predicted_ms > 1e-9 && measured_ms > 0.0 {
            let y = (measured_ms / predicted_ms).ln().clamp(-LN_CLAMP, LN_CLAMP);
            self.fits
                .entry(CoefFamily::Merge)
                .or_default()
                .observe(self.cfg.decay, y);
        } else if measured_ms > 0.0 {
            self.merge_boot_ms = self.merge_boot_ms * self.cfg.decay + measured_ms;
            self.merge_boot_rows = self.merge_boot_rows * self.cfg.decay + s.rows_remapped as f64;
            self.merge_boot_n += 1;
        }
    }

    /// Which family a timing sample's residual calibrates.
    fn classify(&self, s: &TimingSample) -> CoefFamily {
        // Partitioned scans are served by the column fragments; the recorder
        // already reports `store == Column` for them.
        match s.op {
            OpClass::Scan => {
                let frac = s.tail as f64 / s.rows.max(1) as f64;
                if s.store == StoreKind::Column && frac >= self.cfg.tail_min_frac {
                    CoefFamily::Tail
                } else {
                    CoefFamily::Scan(s.store)
                }
            }
            OpClass::FilteredScan => CoefFamily::FilteredScan(s.store),
            OpClass::Point => CoefFamily::Point(s.store),
            OpClass::Insert => CoefFamily::Insert(s.store),
            OpClass::Update => CoefFamily::Update(s.store),
        }
    }

    /// The current drift gauge.
    pub fn gauge(&self) -> DriftGauge {
        let mut families = Vec::with_capacity(self.fits.len());
        let (mut w_total, mut abs_total) = (0.0, 0.0);
        for (family, fit) in &self.fits {
            w_total += fit.w;
            abs_total += fit.s_abs;
            families.push(FamilyDrift {
                family: *family,
                drift: fit.drift(),
                bias: fit.mean(),
                samples: fit.n,
            });
        }
        DriftGauge {
            overall: if w_total > 0.0 {
                abs_total / w_total
            } else {
                0.0
            },
            families,
        }
    }

    /// Whether a workload phase change fired since the last call. Consuming
    /// the signal re-baselines the detector on the new regime.
    pub fn take_phase_shift(&mut self) -> bool {
        self.phase.take()
    }

    /// Discard all accumulated residual evidence: family fits, the merge
    /// bootstrap accumulator, and the phase detector's baselines. The
    /// gauge reads `0` afterwards. Operators call this (via
    /// [`crate::OnlineAdvisor::reset_drift_gauge`]) after an intervention
    /// the old residuals would misattribute — an offline recalibration, a
    /// hardware change, or clearing a noisy-neighbor episode.
    pub fn reset(&mut self) {
        self.fits.clear();
        self.phase = PhaseDetector::new(self.cfg.phase.clone());
        self.merge_boot_ms = 0.0;
        self.merge_boot_rows = 0.0;
        self.merge_boot_n = 0;
    }

    /// Re-fit every eligible drifted family into `handle`, publishing one
    /// amended model version. Returns `None` when no family is outside the
    /// dead-band with enough samples — the model is left untouched (no
    /// version churn).
    ///
    /// Each adjusted family's statistics reset afterwards: the next
    /// residuals measure the *new* coefficients, so persistent drift larger
    /// than [`OnlineCalibratorConfig::max_step`] converges over successive
    /// re-fits instead of compounding stale evidence.
    pub fn refit_into(&mut self, handle: &ModelHandle) -> Option<RefitReport> {
        let mut adjusted: Vec<(CoefFamily, f64)> = Vec::new();
        for (family, fit) in &self.fits {
            if fit.n < self.cfg.min_samples as u64 {
                continue;
            }
            let mean = fit.mean();
            if mean.abs() <= self.cfg.deadband {
                continue;
            }
            let factor = mean.exp().clamp(1.0 / self.cfg.max_step, self.cfg.max_step);
            adjusted.push((*family, factor));
        }
        let bootstrap =
            if self.merge_boot_n >= self.cfg.min_samples as u64 && self.merge_boot_rows > 0.0 {
                Some(self.merge_boot_ms / self.merge_boot_rows)
            } else {
                None
            };
        if adjusted.is_empty() && bootstrap.is_none() {
            return None;
        }
        let drift_before = self.gauge().overall;
        let version = handle.refit(|m| {
            for (family, factor) in &adjusted {
                apply_family_factor(m, *family, *factor);
            }
            if let Some(ms_per_row) = bootstrap {
                m.column.merge_ms = AdjustmentFn::Linear {
                    slope: ms_per_row,
                    intercept: 0.0,
                };
            }
            m.meta.drift = drift_before;
        });
        for (family, _) in &adjusted {
            self.fits.insert(*family, DecayedFit::default());
        }
        if bootstrap.is_some() {
            self.merge_boot_ms = 0.0;
            self.merge_boot_rows = 0.0;
            self.merge_boot_n = 0;
        }
        Some(RefitReport {
            version,
            drift_before,
            adjusted,
            bootstrapped_merge_ms_per_row: bootstrap,
        })
    }
}

/// Apply one family's multiplicative correction to the model —
/// shape-preserving: fitted curves keep their form, only their scale moves.
fn apply_family_factor(m: &mut CostModel, family: CoefFamily, k: f64) {
    match family {
        CoefFamily::Scan(s) => {
            let sm = m.store_mut(s);
            sm.f_rows = sm.f_rows.scaled(k);
        }
        CoefFamily::FilteredScan(s) => {
            let sm = m.store_mut(s);
            sm.sel_per_row_scan *= k;
            sm.sel_per_row_indexed *= k;
            sm.sel_per_match *= k;
        }
        CoefFamily::Point(s) => m.store_mut(s).sel_point_ms *= k,
        CoefFamily::Insert(s) => {
            let sm = m.store_mut(s);
            sm.ins_row = sm.ins_row.scaled(k);
        }
        CoefFamily::Update(s) => m.store_mut(s).upd_row_ms *= k,
        // f_tail is normalized to 1 at an empty tail; scale only its excess
        // so the normalization (and the "a tail never helps" clamp floor)
        // survives the re-fit.
        CoefFamily::Tail => m.column.f_tail = scaled_excess(&m.column.f_tail, k),
        CoefFamily::Merge => m.column.merge_ms = m.column.merge_ms.scaled(k),
    }
}

/// `1 + (f(x) − 1)·k`: scale a factor-above-one function's excess while
/// preserving its value-1 normalization point.
fn scaled_excess(f: &AdjustmentFn, k: f64) -> AdjustmentFn {
    match f {
        AdjustmentFn::Constant(c) => AdjustmentFn::Constant(1.0 + (c - 1.0) * k),
        AdjustmentFn::Linear { slope, intercept } => AdjustmentFn::Linear {
            slope: slope * k,
            intercept: 1.0 + (intercept - 1.0) * k,
        },
        AdjustmentFn::Piecewise { points } => AdjustmentFn::Piecewise {
            points: points
                .iter()
                .map(|&(x, y)| (x, 1.0 + (y - 1.0) * k))
                .collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        op: OpClass,
        store: StoreKind,
        tail: usize,
        predicted_ms: f64,
        measured_ms: f64,
    ) -> TimingSample {
        TimingSample {
            table: "t".into(),
            store,
            partitioned: false,
            disk_cold: false,
            op,
            rows: 10_000,
            tail,
            predicted_ms,
            measured_ms,
        }
    }

    #[test]
    fn refit_corrects_a_perturbed_scan_coefficient() {
        let mut model = CostModel::neutral();
        // True hardware: 1 ms per 1k rows. Stale model: 8x too optimistic.
        model.row.f_rows = AdjustmentFn::Linear {
            slope: 1e-3 / 8.0,
            intercept: 0.0,
        };
        let handle = ModelHandle::new(model);
        let mut cal = OnlineCalibrator::new(OnlineCalibratorConfig::default());
        // Converges over successive clamped re-fits (max_step = 2 ⇒ three
        // doublings close an 8x gap).
        for round in 0..4 {
            for _ in 0..64 {
                let predicted = handle.snapshot().row.f_rows.eval(10_000.0);
                cal.ingest(&sample(
                    OpClass::Scan,
                    StoreKind::Row,
                    0,
                    predicted,
                    10.0, // measured truth
                ));
            }
            let report = cal.refit_into(&handle);
            if round < 3 {
                let report = report.expect("drifted family must re-fit");
                assert!(report.drift_before > 0.0);
            }
        }
        let fitted = handle.snapshot().row.f_rows.eval(10_000.0);
        assert!(
            (fitted - 10.0).abs() / 10.0 < 0.05,
            "fitted {fitted} ms should be within 5 % of the measured 10 ms"
        );
        assert_eq!(handle.snapshot().meta.refits, 3);
        assert!(handle.version() >= 3);
    }

    #[test]
    fn drift_gauge_drops_after_a_refit() {
        let handle = ModelHandle::new({
            let mut m = CostModel::neutral();
            m.row.sel_point_ms = 0.001; // truth: 0.004 (4x off)
            m
        });
        let mut cal = OnlineCalibrator::new(OnlineCalibratorConfig::default());
        for _ in 0..64 {
            cal.ingest(&sample(OpClass::Point, StoreKind::Row, 0, 0.001, 0.004));
        }
        let before = cal.gauge().overall;
        assert!(before > 1.0, "4x misprediction gauges ≈ ln 4 ≈ 1.39");
        cal.refit_into(&handle).expect("must re-fit");
        // Post-refit samples measure the corrected coefficient.
        let corrected = handle.snapshot().row.sel_point_ms;
        for _ in 0..64 {
            cal.ingest(&sample(OpClass::Point, StoreKind::Row, 0, corrected, 0.004));
        }
        let after = cal.gauge().overall;
        assert!(
            after < before / 1.5,
            "gauge must drop once predictions track measurements \
             (before {before}, after {after})"
        );
    }

    #[test]
    fn reset_zeroes_the_gauge_and_discards_evidence() {
        let mut cal = OnlineCalibrator::new(OnlineCalibratorConfig::default());
        for _ in 0..64 {
            cal.ingest(&sample(OpClass::Point, StoreKind::Row, 0, 0.001, 0.004));
        }
        assert!(cal.gauge().overall > 1.0);
        cal.reset();
        let gauge = cal.gauge();
        assert_eq!(gauge.overall, 0.0);
        assert!(gauge.families.is_empty(), "family fits discarded");
        // The discarded evidence must not seed a later re-fit.
        let handle = ModelHandle::new(CostModel::neutral());
        assert!(cal.refit_into(&handle).is_none());
        assert_eq!(handle.version(), 0);
    }

    #[test]
    fn deadband_and_min_samples_suppress_noise_refits() {
        let handle = ModelHandle::new(CostModel::neutral());
        let mut cal = OnlineCalibrator::new(OnlineCalibratorConfig::default());
        // Well-calibrated samples: within the dead-band, no re-fit.
        for _ in 0..100 {
            cal.ingest(&sample(OpClass::Point, StoreKind::Row, 0, 1.0, 1.02));
        }
        assert!(cal.refit_into(&handle).is_none());
        assert_eq!(handle.version(), 0);
        // Strong drift but too few samples: still no re-fit.
        let mut cal = OnlineCalibrator::new(OnlineCalibratorConfig::default());
        for _ in 0..5 {
            cal.ingest(&sample(OpClass::Point, StoreKind::Row, 0, 1.0, 4.0));
        }
        assert!(cal.refit_into(&handle).is_none());
        assert_eq!(handle.snapshot().meta.refits, 0);
    }

    #[test]
    fn tail_and_scan_residuals_are_attributed_separately() {
        let mut cal = OnlineCalibrator::new(OnlineCalibratorConfig::default());
        // Clean column scan: Scan(Column) family.
        cal.ingest(&sample(OpClass::Scan, StoreKind::Column, 0, 1.0, 2.0));
        // Tail-degraded column scan (tail 5 % of rows): Tail family.
        cal.ingest(&sample(OpClass::Scan, StoreKind::Column, 500, 1.0, 2.0));
        let gauge = cal.gauge();
        let fams: Vec<CoefFamily> = gauge.families.iter().map(|f| f.family).collect();
        assert!(fams.contains(&CoefFamily::Scan(StoreKind::Column)));
        assert!(fams.contains(&CoefFamily::Tail));
    }

    #[test]
    fn tail_refit_preserves_the_empty_tail_normalization() {
        let mut m = CostModel::neutral();
        m.column.f_tail = AdjustmentFn::Piecewise {
            points: vec![(0.0, 1.0), (0.1, 1.5)],
        };
        apply_family_factor(&mut m, CoefFamily::Tail, 2.0);
        assert!((m.column.f_tail.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((m.column.f_tail.eval(0.1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_bootstrap_seeds_a_linear_fit_when_the_model_prices_merges_free() {
        let handle = ModelHandle::new(CostModel::neutral());
        let mut cal = OnlineCalibrator::new(OnlineCalibratorConfig::default());
        // 1000 rows per slice at 2 ms each: 0.002 ms/row.
        for _ in 0..32 {
            cal.ingest_merge(
                &MergeSliceSample {
                    table: "t".into(),
                    rows_remapped: 1000,
                    elapsed_ns: 2_000_000,
                },
                handle.snapshot().column.merge_ms.eval(1000.0),
            );
        }
        let report = cal.refit_into(&handle).expect("bootstrap must fire");
        let slope = report
            .bootstrapped_merge_ms_per_row
            .expect("seeded, not scaled");
        assert!((slope - 0.002).abs() < 1e-9);
        assert!(handle.snapshot().column.merge_ms.eval(1000.0) > 0.0);
        // With a priced model, further slices scale instead of bootstrap.
        for _ in 0..32 {
            cal.ingest_merge(
                &MergeSliceSample {
                    table: "t".into(),
                    rows_remapped: 1000,
                    elapsed_ns: 8_000_000, // hardware got 4x slower
                },
                handle.snapshot().column.merge_ms.eval(1000.0),
            );
        }
        let report = cal.refit_into(&handle).expect("scaled re-fit");
        assert!(report.bootstrapped_merge_ms_per_row.is_none());
        assert!(report
            .adjusted
            .iter()
            .any(|(f, k)| *f == CoefFamily::Merge && *k > 1.5));
    }

    #[test]
    fn phase_detector_fires_on_a_regime_shift_then_rebaselines() {
        let mut cal = OnlineCalibrator::new(OnlineCalibratorConfig::default());
        // Steady OLTP phase: point lookups only — no shift.
        for _ in 0..200 {
            cal.ingest(&sample(OpClass::Point, StoreKind::Row, 0, 0.0, 0.0));
        }
        assert!(!cal.take_phase_shift(), "steady regime must not fire");
        // The workload flips analytical.
        for _ in 0..50 {
            cal.ingest(&sample(OpClass::Scan, StoreKind::Row, 0, 0.0, 0.0));
        }
        assert!(cal.take_phase_shift(), "scan-share jump must fire");
        // Consuming the signal re-baselines: the same regime continuing
        // does not refire.
        for _ in 0..50 {
            cal.ingest(&sample(OpClass::Scan, StoreKind::Row, 0, 0.0, 0.0));
        }
        assert!(!cal.take_phase_shift(), "no refire within the new regime");
    }

    #[test]
    fn refit_steps_are_clamped() {
        let handle = ModelHandle::new({
            let mut m = CostModel::neutral();
            m.row.sel_point_ms = 0.001;
            m
        });
        let mut cal = OnlineCalibrator::new(OnlineCalibratorConfig::default());
        for _ in 0..64 {
            // 100x misprediction; one step may only close 2x of it.
            cal.ingest(&sample(OpClass::Point, StoreKind::Row, 0, 0.001, 0.1));
        }
        let report = cal.refit_into(&handle).unwrap();
        let (_, factor) = report.adjusted[0];
        assert!((factor - 2.0).abs() < 1e-12, "clamped to max_step");
        assert!((handle.snapshot().row.sel_point_ms - 0.002).abs() < 1e-12);
    }
}
