//! Tiered persistence: checkpoint-bounded recovery and disk-demoted cold
//! fragments under a memory budget, recorded as `BENCH_tiering.json`.
//!
//! Two claims about the tiered backend, each with a correctness gate:
//!
//! * **Checkpoint bounds recovery** — a directory-backed database streams
//!   statements, checkpoints, then streams a short suffix. Reopening via
//!   [`HybridDatabase::open_dir`] restores the newest checkpoint image and
//!   replays only the suffix; the baseline replays the *entire* log.
//!   `checkpoint_speedup = full_replay_ms / bounded_ms` must be >= 2 with
//!   the log at 4x the suffix, and both paths must rebuild the live
//!   database's exact contents.
//! * **Demotion beats the all-disk corner under a budget** — a skewed
//!   workload (point reads on the hottest 10% of ids plus a thin stream of
//!   full scans) runs against three layouts of the same table: all-memory
//!   column store (whose modeled footprint *exceeds* the budget —
//!   infeasible, timed only for reference), everything demoted to disk,
//!   and the advisor-shaped hybrid (hot 10% in the memory row store, cold
//!   90% demoted). The hybrid must win the stopwatch, and the cost model's
//!   pick among the feasible layouts must match the measured winner.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_tiering`
//! (`-- --smoke` for the small CI configuration).

use std::path::PathBuf;
use std::time::Instant;

use hsd_bench::{advisor_model_or_calibrate, ratio_json};
use hsd_catalog::{HorizontalSpec, PartitionSpec, StorageLayout, TablePlacement, Tier};
use hsd_core::estimator::estimate_workload_layout;
use hsd_core::{placement_footprint_bytes, TierModel};
use hsd_engine::{mover, DurabilityConfig, HybridDatabase, MergeConfig, QueryOutput};
use hsd_query::{AggFunc, AggregateQuery, InsertQuery, Query, SelectQuery, UpdateQuery, Workload};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{ColumnDef, ColumnType, Json, TableSchema, Value};

struct Scale {
    /// Rows in the tiering table and the recovery base load.
    rows: usize,
    /// Post-checkpoint suffix statements; the pre-checkpoint stream is 4x.
    suffix: usize,
    /// Hot-range point selects in the skewed workload.
    points: usize,
    /// Full-table aggregations in the skewed workload.
    scans: usize,
    smoke: bool,
}

impl Scale {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        if smoke {
            Scale {
                rows: 5_000,
                suffix: 500,
                points: 200,
                scans: 5,
                smoke: true,
            }
        } else {
            Scale {
                rows: 50_000,
                suffix: 5_000,
                points: 1_000,
                scans: 20,
                smoke: false,
            }
        }
    }
}

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", ColumnType::BigInt),
            ColumnDef::new("kf", ColumnType::Double),
            ColumnDef::new("grp", ColumnType::Integer),
        ],
        vec![0],
    )
    .expect("schema")
}

fn row(i: i64) -> Vec<Value> {
    vec![
        Value::BigInt(i),
        Value::Double(i as f64 * 0.25),
        Value::Int((i % 9) as i32),
    ]
}

/// 2/3 fresh-id inserts, 1/3 point updates — the recovery stream.
fn stream(db: &HybridDatabase, base: usize, from: usize, statements: usize) {
    for i in from..from + statements {
        let q = if i % 3 == 2 {
            Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(1e6 + i as f64 * 0.017))],
                filter: vec![ColRange::eq(0, Value::BigInt((i % base) as i64))],
            })
        } else {
            Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![row((base + i) as i64)],
            })
        };
        db.execute(&q).expect("statement");
    }
}

/// Canonical sorted table contents — the correctness checksum.
fn probe(db: &HybridDatabase, table: &str) -> Vec<Vec<Value>> {
    let out = db
        .execute(&Query::Select(SelectQuery {
            table: table.into(),
            columns: None,
            filter: vec![],
        }))
        .expect("probe");
    let mut rows = match out {
        QueryOutput::Rows(r) => r,
        other => panic!("probe expected rows, got {other:?}"),
    };
    rows.sort_by_key(|r| match &r[0] {
        Value::BigInt(i) => *i,
        v => panic!("non-bigint key {v:?}"),
    });
    rows
}

fn bench_dir(tag: &str) -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join(format!("hsd_bench_tiering_{tag}"))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = bench_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Claim (a): checkpoint-bounded recovery

struct RecoveryResult {
    full_ms: f64,
    bounded_ms: f64,
    records_full: usize,
    records_suffix: usize,
    checkpoint_seq: u64,
    ok: bool,
}

fn run_recovery(scale: &Scale) -> RecoveryResult {
    let dir = fresh_dir("recovery");
    let (db, report) =
        HybridDatabase::open_dir(&dir, DurabilityConfig::default()).expect("open dir");
    assert!(report.is_clean() && report.records_replayed == 0);
    db.set_merge_config(MergeConfig::disabled());
    db.create_single(schema(), StoreKind::Column)
        .expect("create");
    db.bulk_load("t", (0..scale.rows as i64).map(row))
        .expect("load");
    // 4x the suffix before the checkpoint, the suffix after it.
    stream(&db, scale.rows, 0, scale.suffix * 4);
    let cp = db.checkpoint().expect("checkpoint");
    stream(&db, scale.rows, scale.suffix * 4, scale.suffix);
    db.sync_wal().expect("sync");
    let expected = probe(&db, "t");
    drop(db);

    // Checkpoint-bounded reopen: restore the image, replay the suffix.
    let start = Instant::now();
    let (bounded, brep) =
        HybridDatabase::open_dir(&dir, DurabilityConfig::default()).expect("reopen");
    let bounded_ms = start.elapsed().as_secs_f64() * 1e3;
    let bounded_ok =
        brep.checkpoint_seq == Some(cp.seq) && brep.is_clean() && probe(&bounded, "t") == expected;
    drop(bounded);

    // Baseline: replay the entire log, ignoring the checkpoint.
    let wal_bytes = std::fs::read(dir.join("wal.log")).expect("read wal");
    let start = Instant::now();
    let (full, frep) = HybridDatabase::recover_bytes(&wal_bytes);
    let full_ms = start.elapsed().as_secs_f64() * 1e3;
    let full_ok = frep.is_clean() && probe(&full, "t") == expected;

    eprintln!(
        "[bench_tiering] recovery: full replay of {} records {full_ms:.1} ms, \
         checkpoint-bounded replay of {} records {bounded_ms:.1} ms ({:.2}x)",
        frep.records_replayed,
        brep.records_replayed,
        full_ms / bounded_ms
    );
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryResult {
        full_ms,
        bounded_ms,
        records_full: frep.records_replayed,
        records_suffix: brep.records_replayed,
        checkpoint_seq: cp.seq,
        ok: bounded_ok && full_ok,
    }
}

// ---------------------------------------------------------------------------
// Claim (b): demoted cold fragments under a memory budget

/// The three layouts of the comparison, as placements of table "t".
fn placements(rows: usize) -> [(&'static str, TablePlacement); 3] {
    let split = |at: i64, tier: Tier| {
        TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(at),
            }),
            vertical: None,
            cold_tier: tier,
        })
    };
    [
        ("all_memory", TablePlacement::Single(StoreKind::Column)),
        // Split above every id: the whole table is one demoted cold
        // fragment, decoded from its segment on every access.
        ("all_disk", split(rows as i64, Tier::Disk)),
        // Hot 10% of ids in the memory row store, cold 90% demoted.
        ("hybrid", split((rows as f64 * 0.9) as i64, Tier::Disk)),
    ]
}

/// The skewed workload: point reads on the hottest 10% of ids plus a thin
/// stream of full-table aggregations.
fn skewed_workload(rows: usize, points: usize, scans: usize) -> Vec<Query> {
    let hot_lo = (rows as f64 * 0.9) as i64;
    let hot_span = (rows as i64 - hot_lo).max(1);
    let mut queries: Vec<Query> = (0..points)
        .map(|i| {
            let id = hot_lo + (i as i64 * 7919) % hot_span;
            Query::Select(SelectQuery::point("t", 0, Value::BigInt(id)))
        })
        .collect();
    for _ in 0..scans {
        queries.push(Query::Aggregate(AggregateQuery::simple(
            "t",
            AggFunc::Sum,
            1,
        )));
    }
    queries
}

struct TieringResult {
    budget_bytes: f64,
    per_layout: Vec<(String, f64, f64, f64, bool)>, // name, measured, modeled, footprint, feasible
    measured_winner: String,
    modeled_winner: String,
    speedup_vs_all_disk: f64,
    ok: bool,
}

fn run_tiering(scale: &Scale) -> TieringResult {
    let mut model = advisor_model_or_calibrate("bench_tiering", scale.smoke);
    if model.tier == TierModel::neutral() {
        // Pre-tier committed models price disk residency as free; the
        // comparison needs the documented disk profile.
        model.tier = TierModel::default_disk();
    }

    // Build each layout in its own directory-backed database and time the
    // identical workload against it.
    let queries = skewed_workload(scale.rows, scale.points, scale.scans);
    let mut ctx = None;
    let mut measured: Vec<(String, f64)> = Vec::new();
    let mut expected: Option<Vec<Vec<Value>>> = None;
    for (name, placement) in placements(scale.rows) {
        let dir = fresh_dir(name);
        let (db, _) = HybridDatabase::open_dir(&dir, DurabilityConfig::default()).expect("open");
        db.set_merge_config(MergeConfig::disabled());
        db.create_single(schema(), StoreKind::Column)
            .expect("create");
        db.bulk_load("t", (0..scale.rows as i64).map(row))
            .expect("load");
        if ctx.is_none() {
            // Statistics from the freshly loaded table, before any layout
            // change (identical data in every variant).
            ctx = Some(hsd_bench::ctx_of(&db));
        }
        mover::move_table(&db, "t", &placement).expect("move");
        let start = Instant::now();
        for q in &queries {
            db.execute(q).expect("query");
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let p = probe(&db, "t");
        match &expected {
            None => expected = Some(p),
            Some(e) => assert_eq!(e, &p, "layout {name} changed the data"),
        }
        eprintln!("[bench_tiering] {name}: {ms:.1} ms");
        measured.push((name.to_string(), ms));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Model the same comparison: footprints fix the budget, the estimator
    // prices the workload per layout.
    let ctx = ctx.expect("ctx");
    let tctx = &ctx.tables["t"];
    let workload = Workload::from_queries(queries);
    let mut per_layout = Vec::new();
    let mut budget = 0.0;
    for (name, placement) in placements(scale.rows) {
        let footprint = placement_footprint_bytes(tctx, &placement);
        if name == "hybrid" {
            // The budget admits the hybrid with headroom but not the
            // all-memory column store.
            budget = footprint * 1.5;
        }
        let mut layout = StorageLayout::new();
        layout.set("t", placement);
        let modeled = estimate_workload_layout(&model, &ctx, &layout, &workload);
        per_layout.push((name.to_string(), footprint, modeled));
    }
    let feasible = |fp: f64| fp <= budget;
    let all_memory_infeasible = !feasible(per_layout[0].1);
    let winner_of = |vals: Vec<(String, f64)>| -> String {
        vals.into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("nonempty")
            .0
    };
    let feasible_names: Vec<String> = per_layout
        .iter()
        .filter(|(_, fp, _)| feasible(*fp))
        .map(|(n, _, _)| n.clone())
        .collect();
    let modeled_winner = winner_of(
        per_layout
            .iter()
            .filter(|(n, _, _)| feasible_names.contains(n))
            .map(|(n, _, m)| (n.clone(), *m))
            .collect(),
    );
    let measured_winner = winner_of(
        measured
            .iter()
            .filter(|(n, _)| feasible_names.contains(n))
            .cloned()
            .collect(),
    );
    let ms_of = |name: &str| {
        measured
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ms)| *ms)
            .expect("measured")
    };
    let speedup = ms_of("all_disk") / ms_of("hybrid");
    let ok = all_memory_infeasible
        && feasible_names.contains(&"hybrid".to_string())
        && feasible_names.contains(&"all_disk".to_string())
        && measured_winner == "hybrid"
        && modeled_winner == measured_winner;
    eprintln!(
        "[bench_tiering] budget {budget:.0} B: measured winner {measured_winner}, \
         modeled winner {modeled_winner}, hybrid vs all_disk {speedup:.2}x"
    );
    TieringResult {
        budget_bytes: budget,
        per_layout: per_layout
            .into_iter()
            .map(|(name, fp, modeled)| {
                let is_feasible = feasible(fp);
                (name.clone(), ms_of(&name), modeled, fp, is_feasible)
            })
            .collect(),
        measured_winner,
        modeled_winner,
        speedup_vs_all_disk: speedup,
        ok,
    }
}

fn main() {
    let scale = Scale::from_args();
    let recovery = run_recovery(&scale);
    let tiering = run_tiering(&scale);
    let pass = recovery.ok && recovery.full_ms / recovery.bounded_ms >= 2.0 && tiering.ok;

    let layouts: Vec<Json> = tiering
        .per_layout
        .iter()
        .map(|(name, ms, modeled, fp, feasible)| {
            Json::obj([
                ("layout", Json::Str(name.clone())),
                ("measured_ms", Json::Num(*ms)),
                ("modeled_ms", Json::Num(*modeled)),
                ("footprint_bytes", Json::Num(*fp)),
                ("fits_budget", Json::Bool(*feasible)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("benchmark", Json::Str("tiering".into())),
        ("smoke", Json::Bool(scale.smoke)),
        ("rows", Json::Int(scale.rows as i64)),
        (
            "recovery",
            Json::obj([
                ("full_replay_ms", Json::Num(recovery.full_ms)),
                ("bounded_ms", Json::Num(recovery.bounded_ms)),
                ("records_full", Json::Int(recovery.records_full as i64)),
                ("records_suffix", Json::Int(recovery.records_suffix as i64)),
                ("checkpoint_seq", Json::Int(recovery.checkpoint_seq as i64)),
            ]),
        ),
        (
            "checkpoint_speedup",
            ratio_json(recovery.full_ms, recovery.bounded_ms),
        ),
        (
            "tiering",
            Json::obj([
                ("budget_bytes", Json::Num(tiering.budget_bytes)),
                ("layouts", Json::Arr(layouts)),
                ("measured_winner", Json::Str(tiering.measured_winner)),
                ("modeled_winner", Json::Str(tiering.modeled_winner)),
            ]),
        ),
        ("tiering_speedup", Json::Num(tiering.speedup_vs_all_disk)),
        ("pass", Json::Bool(pass)),
    ]);
    std::fs::write("BENCH_tiering.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_tiering.json");
    eprintln!("[bench_tiering] wrote BENCH_tiering.json (pass = {pass})");
    if !pass {
        std::process::exit(1);
    }
}
