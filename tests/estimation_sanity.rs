//! Estimation-accuracy sanity (the Figure 6 claim, as a test): a freshly
//! calibrated cost model must estimate aggregation runtimes within a
//! reasonable band of the measured runtimes, on both stores, across sizes —
//! and the advisor must pick the argmin of its own estimates.

use std::collections::BTreeMap;
use std::sync::Arc;

use hybrid_store_advisor::advisor::advisor::build_ctx;
use hybrid_store_advisor::advisor::estimator::estimate_query;
use hybrid_store_advisor::prelude::*;

fn wide(rows: usize) -> TableSpec {
    TableSpec::paper_wide("t", rows, 0xACC)
}

#[test]
fn calibrated_estimates_track_measured_runtimes() {
    let model = calibrate(&CalibrationConfig::quick()).unwrap();
    let runner = WorkloadRunner::new();
    for rows in [10_000usize, 30_000] {
        let spec = wide(rows);
        for store in [StoreKind::Row, StoreKind::Column] {
            let db = HybridDatabase::new();
            db.create_single(spec.schema().unwrap(), store).unwrap();
            db.bulk_load("t", spec.rows()).unwrap();
            let schemas = vec![Arc::new(spec.schema().unwrap())];
            let stats: BTreeMap<String, TableStats> = db
                .catalog()
                .entries()
                .iter()
                .map(|e| (e.schema.name.clone(), e.stats.clone()))
                .collect();
            let ctx = build_ctx(&schemas, &stats);
            let assignment: BTreeMap<String, StoreKind> =
                [("t".to_string(), store)].into_iter().collect();
            let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, spec.kf_col(0)));
            let est = estimate_query(&model, &ctx, &assignment, &q);
            let run = runner.time_query(&db, &q, 5).unwrap().as_secs_f64() * 1e3;
            let ratio = est / run;
            assert!(
                (0.2..=5.0).contains(&ratio),
                "{store} @ {rows} rows: estimate {est:.3} ms vs measured {run:.3} ms \
                 (ratio {ratio:.2} outside [0.2, 5])"
            );
        }
    }
}

#[test]
fn advisor_is_argmin_of_estimates_with_calibrated_model() {
    let model = calibrate(&CalibrationConfig::quick()).unwrap();
    let advisor = StorageAdvisor::new(model);
    let spec = wide(20_000);
    let schema = Arc::new(spec.schema().unwrap());
    let db = HybridDatabase::new();
    db.create_single(spec.schema().unwrap(), StoreKind::Column)
        .unwrap();
    db.bulk_load("t", spec.rows()).unwrap();
    let stats: BTreeMap<String, TableStats> = db
        .catalog()
        .entries()
        .iter()
        .map(|e| (e.schema.name.clone(), e.stats.clone()))
        .collect();
    for frac in [0.0, 0.02, 0.1, 0.4] {
        let w = WorkloadGenerator::single_table(
            &spec,
            &MixedWorkloadConfig {
                queries: 200,
                olap_fraction: frac,
                seed: 1,
                ..Default::default()
            },
        );
        let rec = advisor
            .recommend_offline(std::slice::from_ref(&schema), &stats, &w, false)
            .unwrap();
        assert!(
            rec.estimated_ms <= rec.rs_only_ms.min(rec.cs_only_ms) + 1e-9,
            "frac {frac}: recommendation ({} ms) must not exceed the better baseline \
             (RS {} / CS {})",
            rec.estimated_ms,
            rec.rs_only_ms,
            rec.cs_only_ms
        );
    }
}
