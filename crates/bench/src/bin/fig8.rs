//! Figure 8: workload runtime for different **horizontal partitionings**.
//!
//! Paper setup: 500-query mixed workload, 5 % OLAP, update queries
//! addressing the top 10 % of the data (the "OLTP data"). The row-store
//! partition size is swept from 0 % to 20 %; the minimum must sit at the
//! recommended 10 %.

use std::sync::Arc;

use hsd_bench::{build_db, calibrated_model, fmt_s, print_series, scaled_rows, wide_spec};
use hsd_catalog::{HorizontalSpec, PartitionSpec, TablePlacement};
use hsd_core::StorageAdvisor;
use hsd_engine::{mover, WorkloadRunner};
use hsd_query::{MixedWorkloadConfig, WorkloadGenerator};
use hsd_storage::StoreKind;
use hsd_types::Value;

fn main() -> hsd_types::Result<()> {
    let model = calibrated_model()?;
    let runner = WorkloadRunner::new();
    let n = scaled_rows(10_000_000);
    let queries = 500; // paper count; only the data scales
    let spec = wide_spec("t", n, 0xF18);
    let cfg = MixedWorkloadConfig {
        queries,
        olap_fraction: 0.05,
        oltp_insert_share: 0.0,
        oltp_update_share: 1.0,
        whole_tuple_update_prob: 0.5,
        hot_fraction: Some(0.10),
        // Each update addresses a contiguous slice (0.1 % of the table)
        // inside the OLTP region, as in the paper's "updates addressing
        // 10% of the data".
        update_range_rows: Some((n / 1000).max(50)),
        seed: 0xF18,
        ..Default::default()
    };
    let workload = WorkloadGenerator::single_table(&spec, &cfg);

    let mut rows_out = Vec::new();
    let mut best = (f64::INFINITY, 0.0);
    for percent in [0.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0] {
        let db = build_db(&spec, StoreKind::Column)?;
        if percent > 0.0 {
            let split = (n as f64 * (1.0 - percent / 100.0)) as i64;
            let placement = TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: spec.id_col(),
                    split_value: Value::BigInt(split),
                }),
                vertical: None,
                ..Default::default()
            });
            mover::move_table(&db, "t", &placement)?;
        }
        let report = runner.run(&db, &workload)?;
        let secs = report.total.as_secs_f64();
        if secs < best.0 {
            best = (secs, percent);
        }
        rows_out.push(vec![format!("{percent:.1}%"), fmt_s(secs)]);
    }
    print_series(
        &format!(
            "Figure 8: runtime vs horizontal partitioning ({n} tuples, {queries} queries, \
             5% OLAP, updates on top 10%)"
        ),
        &["RS fraction", "runtime (s)"],
        &rows_out,
    );
    println!("measured minimum at {:.1}% row-store data", best.1);

    // What does the advisor itself recommend? (Heuristic over the recorded
    // update envelopes.)
    let schema = Arc::new(spec.schema()?);
    let stats_db = build_db(&spec, StoreKind::Column)?;
    let mut stats = std::collections::BTreeMap::new();
    stats.insert(
        "t".to_string(),
        stats_db.catalog().entry_by_name("t")?.stats.clone(),
    );
    let advisor = StorageAdvisor::new(model);
    let rec = advisor.recommend_offline(&[schema], &stats, &workload, true)?;
    match rec.layout.placement("t") {
        TablePlacement::Partitioned(p) => match p.horizontal {
            Some(h) => {
                let split = h.split_value.as_i64().unwrap_or(0);
                let frac = 100.0 * (n as f64 - split as f64) / n as f64;
                println!(
                    "advisor recommends a hot row-store partition of {frac:.1}% \
                     (split at id >= {split})"
                );
            }
            None => println!("advisor recommends vertical partitioning only"),
        },
        other => println!("advisor recommends {other:?}"),
    }
    Ok(())
}
