//! Shared experiment harness for reproducing the paper's figures.
//!
//! Every figure of the evaluation section has a binary in `src/bin/`
//! (`fig6a` … `fig10`) that prints the same series the paper plots. The
//! experiments run at a configurable fraction of the paper's data sizes
//! (default 1/10th; set `HSD_SCALE=1.0` for paper scale) — the *shapes* of
//! the curves, not the absolute milliseconds, are the reproduction target.

#![warn(missing_docs)]

pub mod fig9;
pub mod scan_workload;
pub mod summary;

use std::io::Write as _;
use std::path::PathBuf;

use hsd_core::{calibrate, CalibrationConfig, CostModel};
use hsd_engine::HybridDatabase;
use hsd_query::TableSpec;
use hsd_storage::StoreKind;
use hsd_types::Result;

/// The advisor's cost model for an ablation bin: the committed
/// `cost_model.json` when present and parsable, else a quick calibration
/// (with `base_rows` reduced for `--smoke` runs, so CI never spends
/// minutes calibrating). `bin` names the caller in the log lines.
pub fn advisor_model_or_calibrate(bin: &str, smoke: bool) -> CostModel {
    match std::fs::read_to_string("cost_model.json") {
        Ok(json) => match CostModel::from_json(&json) {
            Ok(m) => {
                eprintln!("[{bin}] using committed cost_model.json");
                return m;
            }
            Err(e) => eprintln!("[{bin}] cost_model.json unreadable ({e:?}); recalibrating"),
        },
        Err(_) => eprintln!("[{bin}] no cost_model.json; running quick calibration"),
    }
    let cfg = if smoke {
        CalibrationConfig {
            base_rows: 10_000,
            ..CalibrationConfig::quick()
        }
    } else {
        CalibrationConfig::quick()
    };
    calibrate(&cfg).expect("calibration")
}

/// A headline ratio as JSON, guarding zero/missing baselines: emit `"n/a"`
/// instead of `inf`/`NaN`, so `BENCH_*.json` artifacts never carry
/// non-finite numbers and `bench_summary`'s table renders `n/a` rather
/// than dividing garbage.
pub fn ratio_json(numerator: f64, denominator: f64) -> hsd_types::Json {
    if denominator > 0.0 {
        let r = numerator / denominator;
        if r.is_finite() {
            return hsd_types::Json::Num(r);
        }
    }
    hsd_types::Json::Str("n/a".into())
}

/// Experiment scale relative to the paper (`HSD_SCALE`, default `0.1`).
pub fn scale() -> f64 {
    std::env::var("HSD_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(0.1)
}

/// Number of workload queries after scaling (floor 50).
pub fn scaled_queries(paper_queries: usize) -> usize {
    ((paper_queries as f64 * scale().min(1.0)).round() as usize).max(50)
}

/// Number of rows after scaling (floor 10k).
pub fn scaled_rows(paper_rows: usize) -> usize {
    ((paper_rows as f64 * scale()).round() as usize).max(10_000)
}

/// The paper's 30-attribute evaluation table at `rows` rows, with the
/// keyfigure dictionary scaled to keep the compression rate ≈ 0.95
/// independent of the row count.
pub fn wide_spec(name: &str, rows: usize, seed: u64) -> TableSpec {
    let mut spec = TableSpec::paper_wide(name, rows, seed);
    spec.kf_distinct = (rows / 20).max(64) as u32;
    spec
}

/// Build a single-store database holding `spec`.
pub fn build_db(spec: &TableSpec, store: StoreKind) -> Result<HybridDatabase> {
    let db = HybridDatabase::new();
    db.create_single(spec.schema()?, store)?;
    db.bulk_load(&spec.name, spec.rows())?;
    Ok(db)
}

/// Calibrate the cost model at the experiment scale, caching the result as
/// JSON under `target/` so a session of figure runs calibrates once.
pub fn calibrated_model() -> Result<CostModel> {
    let base_rows = scaled_rows(2_000_000).min(300_000);
    let cache = cache_path(base_rows);
    if let Ok(json) = std::fs::read_to_string(&cache) {
        if let Ok(model) = CostModel::from_json(&json) {
            if model.meta.base_rows == base_rows {
                eprintln!("[calibration] reusing cached model ({})", cache.display());
                return Ok(model);
            }
        }
    }
    eprintln!("[calibration] calibrating cost model at base_rows={base_rows} ...");
    let cfg = CalibrationConfig {
        base_rows,
        ..Default::default()
    };
    let model = calibrate(&cfg)?;
    let _ = std::fs::create_dir_all(cache.parent().expect("cache has parent"));
    let _ = std::fs::write(&cache, model.to_json());
    Ok(model)
}

/// Estimation context straight from a live database's catalog.
pub fn ctx_of(db: &HybridDatabase) -> hsd_core::EstimationCtx {
    let schemas: Vec<_> = db
        .catalog()
        .entries()
        .iter()
        .map(|e| e.schema.clone())
        .collect();
    let stats = db
        .catalog()
        .entries()
        .iter()
        .map(|e| (e.schema.name.clone(), e.stats.clone()))
        .collect();
    hsd_core::advisor::build_ctx(&schemas, &stats)
}

fn cache_path(base_rows: usize) -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join(format!("hsd_cost_model_{base_rows}.json"))
}

/// Print an aligned series table (the textual equivalent of one figure).
pub fn print_series(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    let _ = writeln!(out, "{}", header_line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
}

/// Format seconds with 3 decimals.
pub fn fmt_s(seconds: f64) -> String {
    format!("{seconds:.3}")
}

/// Format milliseconds with 2 decimals.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_helpers() {
        // default scale is 0.1 unless HSD_SCALE overrides; floors apply
        assert!(scaled_rows(2_000_000) >= 10_000);
        assert!(scaled_queries(500) >= 50);
        let spec = wide_spec("t", 40_000, 1);
        assert_eq!(spec.kf_distinct, 2_000);
        assert_eq!(spec.arity(), 30);
    }

    #[test]
    fn build_db_works() {
        let spec = wide_spec("t", 500, 1);
        let db = build_db(&spec, StoreKind::Column).unwrap();
        assert_eq!(db.row_count("t").unwrap(), 500);
    }
}
