//! Deterministic dbgen-style data generation.
//!
//! Cardinalities follow the TPC-H ratios (per scale factor: 10k suppliers,
//! 150k customers, 200k parts, 800k partsupps, 1.5m orders, ~6m lineitems),
//! with floors so that tiny scale factors still produce runnable databases.
//! All values are pure functions of `(seed, table, row)`, so the generator
//! streams rows without materializing tables.

use hsd_catalog::TablePlacement;
use hsd_engine::HybridDatabase;
use hsd_storage::StoreKind;
use hsd_types::{Result, Value};

use crate::schema;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PACK",
    "WRAP JAR",
];
const TYPE_ADJ: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_MAT: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const NOUNS: [&str; 12] = [
    "packages",
    "requests",
    "accounts",
    "deposits",
    "instructions",
    "foxes",
    "pinto beans",
    "theodolites",
    "dependencies",
    "excuses",
    "platelets",
    "ideas",
];
const VERBS: [&str; 8] = [
    "sleep",
    "wake",
    "haggle",
    "nag",
    "detect",
    "integrate",
    "engage",
    "doze",
];

/// First order date (1992-01-01) and the order-date span in days (~6.5 y),
/// per the TPC-H specification.
pub const DATE_LO: i32 = 8035;
/// Span of order dates in days.
pub const DATE_SPAN: u64 = 2375;

/// The deterministic TPC-H-like generator.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    /// Scale factor (1.0 ≈ the paper's SF 1).
    pub sf: f64,
    /// Seed for all value functions.
    pub seed: u64,
}

impl TpchGenerator {
    /// Generator at a scale factor.
    pub fn new(sf: f64, seed: u64) -> Self {
        TpchGenerator { sf, seed }
    }

    fn h(&self, table: u64, row: u64, col: u64) -> u64 {
        splitmix64(
            self.seed
                ^ table.wrapping_mul(0xA57B_33C9_D4E2_11F7)
                ^ row.wrapping_mul(0x9E37_79B9)
                ^ (col << 48),
        )
    }

    fn scaled(&self, base: u64, floor: u64) -> usize {
        ((base as f64 * self.sf).round() as u64).max(floor) as usize
    }

    /// Rows in `supplier`.
    pub fn suppliers(&self) -> usize {
        self.scaled(10_000, 10)
    }

    /// Rows in `customer`.
    pub fn customers(&self) -> usize {
        self.scaled(150_000, 30)
    }

    /// Rows in `part`.
    pub fn parts(&self) -> usize {
        self.scaled(200_000, 25)
    }

    /// Rows in `partsupp` (4 suppliers per part).
    pub fn partsupps(&self) -> usize {
        self.parts() * 4
    }

    /// Rows in `orders`.
    pub fn orders(&self) -> usize {
        self.scaled(1_500_000, 100)
    }

    /// Lines of order `o` (1..=7, deterministic; averages ~4 like dbgen).
    pub fn lines_of_order(&self, o: u64) -> usize {
        (self.h(7, o, 99) % 7 + 1) as usize
    }

    /// Total `lineitem` rows.
    pub fn lineitems(&self) -> usize {
        (0..self.orders() as u64)
            .map(|o| self.lines_of_order(o))
            .sum()
    }

    fn comment(&self, table: u64, row: u64) -> Value {
        let h = self.h(table, row, 1000);
        let noun = NOUNS[(h % NOUNS.len() as u64) as usize];
        let verb = VERBS[((h >> 8) % VERBS.len() as u64) as usize];
        let adv = ((h >> 16) % 4) as usize;
        let advs = ["carefully", "quickly", "furiously", "blithely"];
        Value::text(format!("{} {} {}", advs[adv], noun, verb))
    }

    // --- per-table row functions -------------------------------------------

    /// Row `i` of `region`.
    pub fn region_row(&self, i: u64) -> Vec<Value> {
        vec![
            Value::BigInt(i as i64),
            Value::text(REGIONS[i as usize % 5]),
            self.comment(0, i),
        ]
    }

    /// Row `i` of `nation`.
    pub fn nation_row(&self, i: u64) -> Vec<Value> {
        vec![
            Value::BigInt(i as i64),
            Value::text(NATIONS[i as usize % 25]),
            Value::BigInt((i % 5) as i64),
            self.comment(1, i),
        ]
    }

    /// Row `i` of `supplier`.
    pub fn supplier_row(&self, i: u64) -> Vec<Value> {
        let h = self.h(2, i, 0);
        vec![
            Value::BigInt(i as i64),
            Value::text(format!("Supplier#{i:09}")),
            Value::text(format!("addr {}", h % 100_000)),
            Value::BigInt((h % 25) as i64),
            Value::text(format!("{}-{}", 10 + h % 25, h % 10_000_000)),
            Value::Decimal((h % 1_100_000) as i64 - 99_999), // -999.99 .. 10_000.00
            self.comment(2, i),
        ]
    }

    /// Row `i` of `customer`.
    pub fn customer_row(&self, i: u64) -> Vec<Value> {
        let h = self.h(3, i, 0);
        vec![
            Value::BigInt(i as i64),
            Value::text(format!("Customer#{i:09}")),
            Value::text(format!("addr {}", h % 1_000_000)),
            Value::BigInt((h % 25) as i64),
            Value::text(format!("{}-{}", 10 + h % 25, h % 10_000_000)),
            Value::Decimal((h % 1_100_000) as i64 - 99_999),
            Value::text(SEGMENTS[(h % 5) as usize]),
            self.comment(3, i),
        ]
    }

    /// Row `i` of `part`.
    pub fn part_row(&self, i: u64) -> Vec<Value> {
        let h = self.h(4, i, 0);
        let mfgr = 1 + h % 5;
        let brand = 1 + (h >> 4) % 5;
        vec![
            Value::BigInt(i as i64),
            Value::text(format!(
                "{} {}",
                NOUNS[(h % NOUNS.len() as u64) as usize],
                TYPE_MAT[((h >> 8) % 5) as usize].to_lowercase()
            )),
            Value::text(format!("Manufacturer#{mfgr}")),
            Value::text(format!("Brand#{mfgr}{brand}")),
            Value::text(format!(
                "{} {}",
                TYPE_ADJ[((h >> 12) % 6) as usize],
                TYPE_MAT[((h >> 16) % 5) as usize]
            )),
            Value::Int((1 + h % 50) as i32),
            Value::text(CONTAINERS[((h >> 20) % 8) as usize]),
            Value::Decimal((90_000 + (i % 200_000) * 10 + h % 1000) as i64 / 10), // ~900..2100
            self.comment(4, i),
        ]
    }

    /// Row `i` of `partsupp` (part `i / 4`, supplier slot `i % 4`).
    pub fn partsupp_row(&self, i: u64) -> Vec<Value> {
        let part = i / 4;
        let slot = i % 4;
        let h = self.h(5, i, 0);
        let suppliers = self.suppliers() as u64;
        // dbgen's supplier spread: deterministic, covers all suppliers.
        let supp = (part + slot * (suppliers / 4 + 1)) % suppliers;
        vec![
            Value::BigInt(part as i64),
            Value::BigInt(supp as i64),
            Value::Int((1 + h % 9999) as i32),
            Value::Decimal((100 + h % 100_000) as i64),
            self.comment(5, i),
        ]
    }

    /// Row `i` of `orders`.
    pub fn orders_row(&self, i: u64) -> Vec<Value> {
        let h = self.h(6, i, 0);
        let status = [b'F', b'O', b'P'][(h % 3) as usize] as char;
        vec![
            Value::BigInt(i as i64),
            Value::BigInt((h % self.customers() as u64) as i64),
            Value::text(status.to_string()),
            Value::Decimal((85_000 + h % 45_000_000) as i64),
            Value::Date(DATE_LO + (h % DATE_SPAN) as i32),
            Value::text(PRIORITIES[((h >> 8) % 5) as usize]),
            Value::text(format!("Clerk#{:09}", h % 1000)),
            Value::Int(0),
            self.comment(6, i),
        ]
    }

    /// Line `line` (0-based) of order `order`.
    pub fn lineitem_row(&self, order: u64, line: u64) -> Vec<Value> {
        let h = self.h(7, order * 8 + line, 0);
        let orderdate = DATE_LO + (self.h(6, order, 0) % DATE_SPAN) as i32;
        let ship = orderdate + (1 + h % 121) as i32;
        let quantity = (1 + h % 50) as i64;
        let price_per = 90_000 + (h % 120_000) as i64; // cents
        vec![
            Value::BigInt(order as i64),
            Value::Int(line as i32 + 1),
            Value::BigInt(((h >> 3) % self.parts() as u64) as i64),
            Value::BigInt(((h >> 7) % self.suppliers() as u64) as i64),
            Value::Decimal(quantity * 100),
            Value::Decimal(quantity * price_per / 100),
            Value::Decimal((h % 11) as i64), // 0.00 .. 0.10
            Value::Decimal((h % 9) as i64),  // 0.00 .. 0.08
            Value::text(["R", "A", "N"][((h >> 11) % 3) as usize]),
            Value::text(if (h >> 13).is_multiple_of(2) {
                "O"
            } else {
                "F"
            }),
            Value::Date(ship),
            Value::Date(ship + (h % 30) as i32),
            Value::Date(ship + (1 + h % 30) as i32),
            Value::text(INSTRUCTS[((h >> 17) % 4) as usize]),
            Value::text(SHIPMODES[((h >> 21) % 7) as usize]),
            self.comment(7, order * 8 + line),
        ]
    }

    /// Iterator over all lineitem rows.
    pub fn lineitem_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.orders() as u64).flat_map(move |o| {
            (0..self.lines_of_order(o) as u64).map(move |l| self.lineitem_row(o, l))
        })
    }

    /// Create all tables in `db` (using `placement_of`) and load the data.
    pub fn load_into(
        &self,
        db: &HybridDatabase,
        placement_of: impl Fn(&str) -> TablePlacement,
    ) -> Result<()> {
        for schema in schema::all()? {
            let name = schema.name.clone();
            db.create_table(schema, placement_of(&name))?;
        }
        db.bulk_load("region", (0..5).map(|i| self.region_row(i)))?;
        db.bulk_load("nation", (0..25).map(|i| self.nation_row(i)))?;
        db.bulk_load(
            "supplier",
            (0..self.suppliers() as u64).map(|i| self.supplier_row(i)),
        )?;
        db.bulk_load(
            "customer",
            (0..self.customers() as u64).map(|i| self.customer_row(i)),
        )?;
        db.bulk_load("part", (0..self.parts() as u64).map(|i| self.part_row(i)))?;
        db.bulk_load(
            "partsupp",
            (0..self.partsupps() as u64).map(|i| self.partsupp_row(i)),
        )?;
        db.bulk_load(
            "orders",
            (0..self.orders() as u64).map(|i| self.orders_row(i)),
        )?;
        db.bulk_load("lineitem", self.lineitem_rows())?;
        Ok(())
    }

    /// Load with every table in one store (the RS-only / CS-only baselines).
    pub fn load_uniform(&self, db: &HybridDatabase, store: StoreKind) -> Result<()> {
        self.load_into(db, |_| TablePlacement::Single(store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> TpchGenerator {
        TpchGenerator::new(0.001, 42)
    }

    #[test]
    fn cardinality_ratios() {
        let g = TpchGenerator::new(0.01, 1);
        assert_eq!(g.suppliers(), 100);
        assert_eq!(g.customers(), 1_500);
        assert_eq!(g.parts(), 2_000);
        assert_eq!(g.partsupps(), 8_000);
        assert_eq!(g.orders(), 15_000);
        let li = g.lineitems();
        // ~4 lines per order
        assert!(li > 3 * g.orders() && li < 5 * g.orders(), "lineitems {li}");
    }

    #[test]
    fn floors_apply_at_tiny_scale() {
        let g = TpchGenerator::new(0.00001, 1);
        assert!(g.suppliers() >= 10);
        assert!(g.customers() >= 30);
        assert!(g.orders() >= 100);
    }

    #[test]
    fn rows_match_schemas() {
        let g = g();
        let schemas = schema::all().unwrap();
        let checks: Vec<(usize, Vec<Value>)> = vec![
            (0, g.region_row(2)),
            (1, g.nation_row(7)),
            (2, g.supplier_row(3)),
            (3, g.customer_row(9)),
            (4, g.part_row(11)),
            (5, g.partsupp_row(13)),
            (6, g.orders_row(17)),
            (7, g.lineitem_row(17, 2)),
        ];
        for (idx, row) in checks {
            schemas[idx].validate_row(&row).unwrap_or_else(|e| {
                panic!("row for {} invalid: {e}", schemas[idx].name);
            });
        }
    }

    #[test]
    fn determinism() {
        let g1 = g();
        let g2 = g();
        assert_eq!(g1.orders_row(5), g2.orders_row(5));
        assert_ne!(
            TpchGenerator::new(0.001, 1).orders_row(5),
            TpchGenerator::new(0.001, 2).orders_row(5)
        );
    }

    #[test]
    fn foreign_keys_in_range() {
        let g = g();
        for i in 0..50u64 {
            let o = g.orders_row(i);
            let cust = o[1].as_i64().unwrap();
            assert!((cust as usize) < g.customers());
            let l = g.lineitem_row(i, 0);
            assert!((l[2].as_i64().unwrap() as usize) < g.parts());
            assert!((l[3].as_i64().unwrap() as usize) < g.suppliers());
        }
        for i in 0..g.partsupps() as u64 {
            let ps = g.partsupp_row(i);
            assert!((ps[1].as_i64().unwrap() as usize) < g.suppliers());
        }
    }

    #[test]
    fn load_into_database() {
        let g = g();
        let db = HybridDatabase::new();
        g.load_uniform(&db, StoreKind::Column).unwrap();
        assert_eq!(db.row_count("region").unwrap(), 5);
        assert_eq!(db.row_count("nation").unwrap(), 25);
        assert_eq!(db.row_count("orders").unwrap(), g.orders());
        assert_eq!(db.row_count("lineitem").unwrap(), g.lineitems());
        // dates are plausible
        let catalog = db.catalog();
        let stats = &catalog.entry_by_name("orders").unwrap().stats;
        match (&stats.columns[4].min, &stats.columns[4].max) {
            (Some(Value::Date(lo)), Some(Value::Date(hi))) => {
                assert!(*lo >= DATE_LO && *hi <= DATE_LO + DATE_SPAN as i32);
            }
            other => panic!("unexpected date stats {other:?}"),
        }
    }
}
