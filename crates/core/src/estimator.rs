//! Query- and workload-cost estimation against hypothetical store
//! assignments and layouts.
//!
//! This is the evaluation half of Section 3: given the calibrated model,
//! "the storage advisor can estimate and compare the workload runtimes for
//! managing the tables in the row store and in the column store".

use std::collections::BTreeMap;
use std::ops::Bound;

use hsd_catalog::{StorageLayout, TablePlacement, TableStats};
use hsd_query::{AggregateQuery, Query, SelectQuery, UpdateQuery, Workload};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{ColumnIdx, ColumnType, Value};

use crate::cost::{store_index, CostModel, StoreModel};

/// Per-table estimation inputs: basic statistics plus index annotations —
/// exactly the catalog contents of Figure 4.
#[derive(Debug, Clone)]
pub struct TableCtx {
    /// Basic table statistics.
    pub stats: TableStats,
    /// Columns carrying a row-store secondary index.
    pub indexed: Vec<ColumnIdx>,
    /// Column types (schema order).
    pub column_types: Vec<ColumnType>,
    /// Primary-key column indexes (point-query detection).
    pub pk_columns: Vec<ColumnIdx>,
    /// Accumulated dictionary-tail entries of the table's column-store
    /// partitions (0 when unknown or row-store resident). Feeds the
    /// `f_tail` scan-degradation adjustment for tail-aware estimates. The
    /// advisor's placement search deliberately leaves this at 0 — a tail is
    /// a transient condition whose remedy is a scheduled merge, not a store
    /// migration (see `StorageAdvisor::recommend_online`).
    pub delta_tail: usize,
    /// Observed dictionary-tail entries per write statement, from the
    /// recorder's live sampling
    /// (`hsd_catalog::TableActivity::observed_tail_rate`). `None` when no
    /// live observation exists (offline mode, row-store residency); the
    /// maintenance drivers then fall back to the static
    /// one-entry-per-assignment upper bound.
    pub observed_tail_rate: Option<f64>,
}

/// Estimation context: statistics for every table the workload touches.
#[derive(Debug, Clone, Default)]
pub struct EstimationCtx {
    /// Per-table inputs, keyed by table name.
    pub tables: BTreeMap<String, TableCtx>,
}

impl EstimationCtx {
    /// Empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table.
    pub fn insert(&mut self, name: impl Into<String>, ctx: TableCtx) {
        self.tables.insert(name.into(), ctx);
    }

    fn table(&self, name: &str) -> Option<&TableCtx> {
        self.tables.get(name)
    }
}

/// Estimated selectivity (matched-row count) of a conjunctive filter.
fn estimate_matches(ctx: &TableCtx, filter: &[ColRange]) -> f64 {
    let n = ctx.stats.row_count as f64;
    let mut sel = 1.0;
    for r in filter {
        let (lo, hi) = range_bounds(ctx, r);
        sel *= ctx.stats.estimate_range_selectivity(r.column, &lo, &hi);
    }
    (sel * n).max(0.0)
}

fn range_bounds(ctx: &TableCtx, r: &ColRange) -> (Value, Value) {
    let col = r.column;
    let min = ctx
        .stats
        .columns
        .get(col)
        .and_then(|c| c.min.clone())
        .unwrap_or(Value::Null);
    let max = ctx
        .stats
        .columns
        .get(col)
        .and_then(|c| c.max.clone())
        .unwrap_or(Value::Null);
    let lo = match r.lo_ref() {
        Bound::Included(v) | Bound::Excluded(v) => v.clone(),
        Bound::Unbounded => min,
    };
    let hi = match r.hi_ref() {
        Bound::Included(v) | Bound::Excluded(v) => v.clone(),
        Bound::Unbounded => max,
    };
    (lo, hi)
}

/// The scan-degradation multiplier for the table's accumulated dictionary
/// tail (`f_tail`), clamped to never *reward* a tail. The row store's
/// neutral constant 1 makes this a no-op there.
fn tail_factor(m: &StoreModel, tctx: &TableCtx) -> f64 {
    if tctx.delta_tail == 0 {
        return 1.0;
    }
    let frac = tctx.delta_tail as f64 / (tctx.stats.row_count.max(1)) as f64;
    m.f_tail.eval(frac).max(1.0)
}

/// Whether the filter is a point predicate on the table's full primary key.
fn is_pk_point(ctx: &TableCtx, filter: &[ColRange]) -> bool {
    let pk: &[ColumnIdx] = if ctx.pk_columns.is_empty() {
        &[0]
    } else {
        &ctx.pk_columns
    };
    filter.len() == pk.len()
        && pk.iter().all(|col| {
            filter
                .iter()
                .any(|r| r.column == *col && r.as_eq().is_some())
        })
}

/// Estimate one query's runtime (ms) under a per-table store assignment.
///
/// `assignment` maps table name → store; unlisted tables default to the row
/// store (matching [`StorageLayout::placement`] semantics).
pub fn estimate_query(
    model: &CostModel,
    ctx: &EstimationCtx,
    assignment: &BTreeMap<String, StoreKind>,
    query: &Query,
) -> f64 {
    let store_of = |t: &str| -> StoreKind { assignment.get(t).copied().unwrap_or(StoreKind::Row) };
    match query {
        Query::Aggregate(q) => match &q.join {
            None => estimate_aggregate(model, ctx, store_of(&q.table), q, None),
            Some(join) => {
                let fact_store = store_of(&q.table);
                let dim_store = store_of(&join.dim_table);
                let dim_rows = ctx
                    .table(&join.dim_table)
                    .map_or(0.0, |t| t.stats.row_count as f64);
                let agg = estimate_aggregate(model, ctx, fact_store, q, Some(dim_store));
                let build = model.dim_build[store_index(dim_store)].eval(dim_rows);
                agg * model.join_factor_of(fact_store, dim_store) + build.max(0.0)
            }
        },
        Query::Select(q) => estimate_select(model, ctx, store_of(&q.table), q),
        Query::Insert(q) => {
            let store = store_of(&q.table);
            let n = ctx
                .table(&q.table)
                .map_or(0.0, |t| t.stats.row_count as f64);
            let per_row = model.store(store).ins_row.eval(n).max(0.0);
            per_row * q.rows.len() as f64
        }
        Query::Update(q) => estimate_update(model, ctx, store_of(&q.table), q),
    }
}

/// Aggregation estimate. For join queries (`dim_store` set) the group-by is
/// on the dimension side; the join factor is applied by the caller.
fn estimate_aggregate(
    model: &CostModel,
    ctx: &EstimationCtx,
    store: StoreKind,
    q: &AggregateQuery,
    dim_store: Option<StoreKind>,
) -> f64 {
    let m = model.store(store);
    let Some(tctx) = ctx.table(&q.table) else {
        return 0.0;
    };
    let n = tctx.stats.row_count as f64;
    // Σ over aggregates of (base-cost multiplier · data-type constant) —
    // "the additional aggregate adds another base cost term including its
    // adjustment to the data type".
    let mut agg_terms = 0.0;
    let mut comp_sum = 0.0;
    for a in &q.aggregates {
        let ty = tctx
            .column_types
            .get(a.column)
            .copied()
            .unwrap_or(ColumnType::Double);
        agg_terms += m.base_agg_of(a.func) * m.c_type_of(ty);
        comp_sum += tctx
            .stats
            .columns
            .get(a.column)
            .map_or(0.0, |c| c.compression_rate);
    }
    let compression = if q.aggregates.is_empty() {
        tctx.stats.avg_compression_rate()
    } else {
        comp_sum / q.aggregates.len() as f64
    };
    let grouped = q.group_by.is_some()
        || dim_store.is_some() && q.join.as_ref().is_some_and(|j| j.group_by_dim.is_some());
    let c_group = if grouped { m.c_group_by } else { 1.0 };
    // The accumulated delta tail degrades every column-store scan until the
    // next merge — the dictionary-tail penalty the merge scheduler trades
    // against the merge cost.
    let tail = tail_factor(m, tctx);
    if q.filter.is_empty() {
        agg_terms * c_group * m.f_rows.eval(n).max(0.0) * m.f_compression.eval(compression) * tail
    } else {
        // Filtered aggregation: pay the selection to locate rows, then
        // aggregate over the matched subset.
        let matched = estimate_matches(tctx, &q.filter);
        let locate = locate_cost(m, tctx, &q.filter, store);
        locate
            + agg_terms
                * c_group
                * m.f_rows.eval(matched).max(0.0)
                * m.f_compression.eval(compression)
                * tail
    }
}

/// Cost of locating the rows matching `filter` (shared by selects, updates,
/// and filtered aggregates).
fn locate_cost(m: &StoreModel, tctx: &TableCtx, filter: &[ColRange], store: StoreKind) -> f64 {
    if is_pk_point(tctx, filter) {
        return m.sel_point_ms;
    }
    let n = tctx.stats.row_count as f64;
    let matched = estimate_matches(tctx, filter);
    let indexed = match store {
        // The column store's dictionary provides the implicit index.
        StoreKind::Column => true,
        StoreKind::Row => filter.iter().any(|r| tctx.indexed.contains(&r.column)),
    };
    let per_row = if indexed && store == StoreKind::Row {
        m.sel_per_row_indexed
    } else {
        m.sel_per_row_scan
    };
    // Tail entries disable the column store's fused scan kernel for the
    // affected blocks, so predicate evaluation degrades with the tail.
    per_row * n * tail_factor(m, tctx) + m.sel_per_match * matched
}

fn estimate_select(
    model: &CostModel,
    ctx: &EstimationCtx,
    store: StoreKind,
    q: &SelectQuery,
) -> f64 {
    let m = model.store(store);
    let Some(tctx) = ctx.table(&q.table) else {
        return 0.0;
    };
    let arity = tctx.column_types.len().max(1);
    let k = q.columns.as_ref().map_or(arity, Vec::len) as f64;
    let col_factor = m.f_selected_columns.eval(k).max(0.0);
    if is_pk_point(tctx, &q.filter) {
        return m.sel_point_ms * col_factor;
    }
    let matched = estimate_matches(tctx, &q.filter);
    let locate = locate_cost(m, tctx, &q.filter, store);
    // Emission: per matched row, scaled by tuple-reconstruction width.
    locate + m.sel_per_match * matched * (col_factor - 1.0).max(0.0)
}

fn estimate_update(
    model: &CostModel,
    ctx: &EstimationCtx,
    store: StoreKind,
    q: &UpdateQuery,
) -> f64 {
    let m = model.store(store);
    let Some(tctx) = ctx.table(&q.table) else {
        return 0.0;
    };
    let matched = if is_pk_point(tctx, &q.filter) {
        1.0
    } else {
        estimate_matches(tctx, &q.filter)
    };
    let locate = locate_cost(m, tctx, &q.filter, store);
    let k = q.sets.len().max(1) as f64;
    locate + m.upd_row_ms * matched * m.f_affected_columns.eval(k).max(0.0)
}

/// Estimate a whole workload (ms) under a per-table store assignment.
pub fn estimate_workload(
    model: &CostModel,
    ctx: &EstimationCtx,
    assignment: &BTreeMap<String, StoreKind>,
    workload: &Workload,
) -> f64 {
    workload
        .queries
        .iter()
        .map(|q| estimate_query(model, ctx, assignment, q))
        .sum()
}

// ---------------------------------------------------------------------------
// Maintenance drivers (delta upkeep of column-store placements)

/// Per-table maintenance drivers derived from a workload window: how much
/// the window would grow a column-store placement's dictionary tails, and
/// how many scan-type statements would pay the resulting `f_tail` penalty.
///
/// These are the inputs of maintenance-aware placement
/// ([`crate::maintenance::estimate_maintenance`]): a query-cost-only store
/// comparison cannot see that a write-heavy column table pays for its
/// merges, so the advisor derives the upkeep drivers from the same workload
/// it estimates query costs for.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaintenanceDrivers {
    /// Modeled dictionary-tail growth in entries. Each update statement
    /// interns up to one fresh value per assigned column; each inserted row
    /// interns at least its (unique) key. Repeated values intern nothing,
    /// so this is a deliberate upper bound — the direction that protects
    /// against under-charging delta upkeep.
    pub tail_growth: f64,
    /// Scan-type statements (aggregations and non-point selects) that pay
    /// the `f_tail` degradation until the next merge.
    pub scans: f64,
}

/// Derive the per-table [`MaintenanceDrivers`] of a workload window.
///
/// Tail growth starts from the static upper bound (one entry per assigned
/// column / inserted row — repeated values intern nothing, so actual growth
/// can only be lower). When the estimation context carries an **observed**
/// tail rate ([`TableCtx::observed_tail_rate`], fed back from the
/// recorder's live dictionary sampling in the online mode), the estimate is
/// tightened to `rate × write statements`, capped by the upper bound — so a
/// skewed workload that keeps re-writing the same few values no longer gets
/// charged as if every assignment interned a fresh entry.
pub fn workload_maintenance_drivers(
    ctx: &EstimationCtx,
    workload: &Workload,
) -> BTreeMap<String, MaintenanceDrivers> {
    let mut out: BTreeMap<String, MaintenanceDrivers> = BTreeMap::new();
    let mut write_stmts: BTreeMap<String, f64> = BTreeMap::new();
    for q in &workload.queries {
        let entry = out.entry(q.table().to_string()).or_default();
        match q {
            Query::Update(u) => {
                entry.tail_growth += u.sets.len().max(1) as f64;
                *write_stmts.entry(q.table().to_string()).or_default() += 1.0;
            }
            Query::Insert(i) => {
                entry.tail_growth += i.rows.len() as f64;
                *write_stmts.entry(q.table().to_string()).or_default() += 1.0;
            }
            Query::Aggregate(_) => entry.scans += 1.0,
            Query::Select(s) => {
                let point = ctx
                    .table(&s.table)
                    .is_some_and(|t| is_pk_point(t, &s.filter));
                if !point {
                    entry.scans += 1.0;
                }
            }
        }
    }
    for (table, drivers) in &mut out {
        let Some(rate) = ctx.table(table).and_then(|t| t.observed_tail_rate) else {
            continue;
        };
        let writes = write_stmts.get(table).copied().unwrap_or(0.0);
        drivers.tail_growth = drivers.tail_growth.min(rate.max(0.0) * writes);
    }
    out
}

/// Maintenance drivers of the delta-carrying region of one *placement*:
/// which rows the region holds and which share of the workload's tail
/// growth and scan pressure it actually pays.
///
/// This is the fragment-level refinement of [`MaintenanceDrivers`]: a
/// single column table's region is the whole table, but a hot/cold
/// partitioned placement's only delta region is the **cold column
/// fragment** — inserts land in the hot row-store partition and intern
/// nothing there, updates routed to the hot rows or to row-fragment
/// columns intern nothing either. Billing such a placement the full-table
/// drivers systematically over-charges exactly the hybrid layouts the
/// advisor exists to find.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FragmentDrivers {
    /// Rows resident in the placement's column-store region (the cold rows
    /// for hot/cold splits; every row for a single column placement). This
    /// is the row count merge costs scale with.
    pub rows: usize,
    /// Tail growth and scan pressure charged to that region.
    pub drivers: MaintenanceDrivers,
}

/// Derive the [`FragmentDrivers`] of `table` under `placement` from a
/// workload window — the fragment-level analogue of
/// [`workload_maintenance_drivers`]. Returns `None` when the placement has
/// no column-store region (a single row-store table pays no delta upkeep).
///
/// Routing rules, mirroring the executor and [`estimate_query_layout`]:
///
/// * **Inserts** under a horizontal split land in the hot row-store
///   partition: zero tail growth. Without a horizontal split (vertical-only
///   placements) each inserted row interns at least its key in the column
///   fragment, as for a single column table.
/// * **Updates** intern only assignments to column-fragment columns
///   (vertical split), weighted by the cold row fraction (horizontal
///   split): a point update hits the cold region with probability
///   `1 − hot_fraction`.
/// * **Scans** (aggregations, non-point selects) pay the cold fragment's
///   tail penalty — except selects a vertical split routes entirely
///   (projection *and* filter) to the row fragment.
/// * The observed tail rate ([`TableCtx::observed_tail_rate`]) tightens
///   the static bound exactly as in [`workload_maintenance_drivers`]; the
///   recorder samples the cold fragment's live tail on partitioned
///   layouts, so the rate already reflects fragment-level growth.
pub fn placement_fragment_drivers(
    ctx: &EstimationCtx,
    workload: &Workload,
    table: &str,
    placement: &TablePlacement,
) -> Option<FragmentDrivers> {
    let tctx = ctx.table(table);
    let rows = tctx.map_or(0, |t| t.stats.row_count);
    let spec = match placement {
        TablePlacement::Single(StoreKind::Row) => return None,
        TablePlacement::Single(StoreKind::Column) => None,
        TablePlacement::Partitioned(spec) => Some(spec),
    };
    let hot_fraction = match (spec, tctx) {
        (Some(spec), Some(t)) => crate::partition::horizontal_hot_fraction(&t.stats, spec),
        _ => 0.0,
    };
    let cold_fraction = 1.0 - hot_fraction;
    let mut drivers = MaintenanceDrivers::default();
    let mut write_stmts = 0.0f64;
    for q in &workload.queries {
        if q.table() != table {
            continue;
        }
        match q {
            Query::Insert(i) => {
                let absorbed_by_hot = spec.is_some_and(|s| s.horizontal.is_some());
                if !absorbed_by_hot {
                    drivers.tail_growth += i.rows.len() as f64;
                    write_stmts += 1.0;
                }
            }
            Query::Update(u) => {
                let interned = match spec.and_then(|s| s.vertical.as_ref()) {
                    Some(v) => u
                        .sets
                        .iter()
                        .filter(|(c, _)| !v.row_cols.contains(c))
                        .count() as f64,
                    None => u.sets.len().max(1) as f64,
                };
                if interned > 0.0 {
                    drivers.tail_growth += interned * cold_fraction;
                    write_stmts += cold_fraction;
                }
            }
            Query::Aggregate(_) => drivers.scans += 1.0,
            Query::Select(s) => {
                let point = tctx.is_some_and(|t| is_pk_point(t, &s.filter));
                let row_only = spec.is_some_and(|s2| select_row_fragment_only(s2, s));
                if !point && !row_only {
                    drivers.scans += 1.0;
                }
            }
        }
    }
    if let Some(rate) = tctx.and_then(|t| t.observed_tail_rate) {
        drivers.tail_growth = drivers.tail_growth.min(rate.max(0.0) * write_stmts);
    }
    let fragment_rows = if spec.is_some() {
        (rows as f64 * cold_fraction).round() as usize
    } else {
        rows
    };
    Some(FragmentDrivers {
        rows: fragment_rows,
        drivers,
    })
}

/// Whether a vertical split routes the whole select — projection and
/// filter — to the row-store fragment, so the column fragment (and its
/// tail) is never touched.
fn select_row_fragment_only(spec: &hsd_catalog::PartitionSpec, q: &SelectQuery) -> bool {
    let Some(v) = &spec.vertical else {
        return false;
    };
    let cols_row = q
        .columns
        .as_ref()
        .is_some_and(|cols| cols.iter().all(|c| *c == 0 || v.row_cols.contains(c)));
    let filter_row = q
        .filter
        .iter()
        .all(|r| r.column == 0 || v.row_cols.contains(&r.column));
    cols_row && filter_row
}

// ---------------------------------------------------------------------------
// Layout-aware estimation (partitioned placements)

/// Estimate one query under a full [`StorageLayout`], approximating
/// partitioned tables by their hot/cold row fractions.
pub fn estimate_query_layout(
    model: &CostModel,
    ctx: &EstimationCtx,
    layout: &StorageLayout,
    query: &Query,
) -> f64 {
    // Single-store view of the layout for tables that are not partitioned.
    let mut single: BTreeMap<String, StoreKind> = BTreeMap::new();
    for name in ctx.tables.keys() {
        if let TablePlacement::Single(s) = layout.placement(name) {
            single.insert(name.clone(), s);
        }
    }
    let table = query.table();
    match layout.placement(table) {
        TablePlacement::Single(_) => estimate_query(model, ctx, &single, query),
        TablePlacement::Partitioned(spec) => {
            let Some(tctx) = ctx.table(table) else {
                // No statistics for the table: fall back to the single-store
                // estimate instead of pricing the partitioned placement as
                // free — a stats-less table must cost the *same* under every
                // layout, not bias the comparison toward partitioning.
                return estimate_query(model, ctx, &single, query);
            };
            let hot_fraction = crate::partition::horizontal_hot_fraction(&tctx.stats, &spec);
            estimate_partitioned(model, ctx, &single, query, tctx, &spec, hot_fraction)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn estimate_partitioned(
    model: &CostModel,
    ctx: &EstimationCtx,
    single: &BTreeMap<String, StoreKind>,
    query: &Query,
    tctx: &TableCtx,
    spec: &hsd_catalog::PartitionSpec,
    hot_fraction: f64,
) -> f64 {
    let table = query.table().to_string();
    let n = tctx.stats.row_count as f64;
    // Tier surcharge inputs: a disk-resident cold fragment adds decode
    // bandwidth to scans, fetch latency to point reads, and a segment
    // rewrite cycle to cold-routed writes (see [`crate::cost::TierModel`]).
    let disk_cold = spec.cold_tier == hsd_catalog::Tier::Disk;
    let cold_fraction = 1.0 - hot_fraction;
    let cold_mib = if disk_cold {
        n * cold_fraction * crate::budget::column_bytes_per_row(tctx) / (1024.0 * 1024.0)
    } else {
        0.0
    };
    let tier = &model.tier;
    // Build scaled contexts for the hot and cold parts.
    let scaled = |fraction: f64| -> EstimationCtx {
        let mut c = ctx.clone();
        if let Some(t) = c.tables.get_mut(&table) {
            t.stats.row_count = (n * fraction).round() as usize;
        }
        c
    };
    let with_store = |s: StoreKind| -> BTreeMap<String, StoreKind> {
        let mut a = single.clone();
        a.insert(table.clone(), s);
        a
    };
    match query {
        Query::Insert(_) => {
            // Inserts go to the hot row-store partition when present.
            let store = if spec.horizontal.is_some() {
                StoreKind::Row
            } else {
                StoreKind::Column
            };
            estimate_query(
                model,
                &scaled(hot_fraction.max(0.01)),
                &with_store(store),
                query,
            )
        }
        Query::Update(q) => {
            // Vertical split: updates touching only row-fragment columns run
            // at row-store cost; otherwise column cost dominates.
            let store = update_store(spec, q);
            let hot = estimate_query(
                model,
                &scaled(hot_fraction),
                &with_store(StoreKind::Row),
                query,
            );
            let cold = estimate_query(
                model,
                &scaled(1.0 - hot_fraction),
                &with_store(store),
                query,
            );
            // A point update hits exactly one partition; weight by
            // fraction. A cold-routed write against a disk-tier fragment
            // additionally fetches the segment and rewrites it whole
            // (write-through re-publication).
            let disk_write = if disk_cold {
                cold_fraction * (tier.point_ms + tier.rewrite_mib_ms * cold_mib)
            } else {
                0.0
            };
            hot * hot_fraction + cold * cold_fraction + disk_write
        }
        Query::Select(q) => {
            let store = select_store(spec, q);
            let hot = estimate_query(
                model,
                &scaled(hot_fraction),
                &with_store(StoreKind::Row),
                query,
            );
            let cold = estimate_query(
                model,
                &scaled(1.0 - hot_fraction),
                &with_store(store),
                query,
            );
            if is_pk_point(tctx, &q.filter) {
                // A point read lands cold with probability `cold_fraction`
                // and then pays the segment fetch latency.
                let disk_point = if disk_cold {
                    cold_fraction * tier.point_ms
                } else {
                    0.0
                };
                hot * hot_fraction + cold * cold_fraction + disk_point
            } else {
                // A ranged select decodes the whole cold segment
                // (`cold_mib` is zero for memory-resident cold parts).
                hot + cold + model.union_overhead_ms + tier.scan_mib_ms * cold_mib
            }
        }
        Query::Aggregate(_) => {
            // Aggregation unions both partitions: row-store scan over the
            // hot rows plus column-store scan over the cold rows.
            let hot = if hot_fraction > 0.0 {
                estimate_query(
                    model,
                    &scaled(hot_fraction),
                    &with_store(StoreKind::Row),
                    query,
                )
            } else {
                0.0
            };
            let cold = estimate_query(
                model,
                &scaled(1.0 - hot_fraction),
                &with_store(StoreKind::Column),
                query,
            );
            hot + cold
                + if spec.horizontal.is_some() {
                    model.union_overhead_ms
                } else {
                    0.0
                }
                + tier.scan_mib_ms * cold_mib
        }
    }
}

fn update_store(spec: &hsd_catalog::PartitionSpec, q: &UpdateQuery) -> StoreKind {
    match &spec.vertical {
        Some(v) if q.sets.iter().all(|(c, _)| v.row_cols.contains(c)) => StoreKind::Row,
        Some(_) | None => StoreKind::Column,
    }
}

fn select_store(spec: &hsd_catalog::PartitionSpec, q: &SelectQuery) -> StoreKind {
    match (&spec.vertical, &q.columns) {
        (Some(v), Some(cols)) if cols.iter().all(|c| *c == 0 || v.row_cols.contains(c)) => {
            StoreKind::Row
        }
        _ => StoreKind::Column,
    }
}

/// Estimate a whole workload under a full layout.
pub fn estimate_workload_layout(
    model: &CostModel,
    ctx: &EstimationCtx,
    layout: &StorageLayout,
    workload: &Workload,
) -> f64 {
    workload
        .queries
        .iter()
        .map(|q| estimate_query_layout(model, ctx, layout, q))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AdjustmentFn;
    use hsd_catalog::ColumnStats;
    use hsd_query::{AggFunc, AggregateQuery, InsertQuery};

    fn tctx(rows: usize) -> TableCtx {
        TableCtx {
            stats: TableStats {
                row_count: rows,
                columns: vec![
                    ColumnStats {
                        distinct: rows,
                        min: Some(Value::BigInt(0)),
                        max: Some(Value::BigInt(rows as i64 - 1)),
                        compression_rate: 0.0,
                    },
                    ColumnStats {
                        distinct: 100,
                        min: Some(Value::Double(0.0)),
                        max: Some(Value::Double(100.0)),
                        compression_rate: 0.7,
                    },
                ],
            },
            indexed: vec![],
            column_types: vec![ColumnType::BigInt, ColumnType::Double],
            pk_columns: vec![0],
            delta_tail: 0,
            observed_tail_rate: None,
        }
    }

    fn model() -> CostModel {
        let mut m = CostModel::neutral();
        // RS aggregation: 1 µs/row; CS: 0.1 µs/row
        m.row.f_rows = AdjustmentFn::Linear {
            slope: 1e-3,
            intercept: 0.1,
        };
        m.column.f_rows = AdjustmentFn::Linear {
            slope: 1e-4,
            intercept: 0.2,
        };
        // inserts: RS cheap, CS 5x
        m.row.ins_row = AdjustmentFn::Constant(0.001);
        m.column.ins_row = AdjustmentFn::Constant(0.005);
        m.row.sel_point_ms = 0.002;
        m.column.sel_point_ms = 0.01;
        m.row.upd_row_ms = 0.002;
        m.column.upd_row_ms = 0.01;
        m
    }

    fn ctx() -> EstimationCtx {
        let mut c = EstimationCtx::new();
        c.insert("t", tctx(10_000));
        c
    }

    fn assign(s: StoreKind) -> BTreeMap<String, StoreKind> {
        let mut a = BTreeMap::new();
        a.insert("t".to_string(), s);
        a
    }

    #[test]
    fn aggregation_prefers_column_store() {
        let m = model();
        let c = ctx();
        let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        let rs = estimate_query(&m, &c, &assign(StoreKind::Row), &q);
        let cs = estimate_query(&m, &c, &assign(StoreKind::Column), &q);
        assert!(rs > cs, "rs={rs} cs={cs}");
        // linear in rows: doubling rows roughly doubles cost
        let mut big = EstimationCtx::new();
        big.insert("t", tctx(20_000));
        let rs2 = estimate_query(&m, &big, &assign(StoreKind::Row), &q);
        assert!(rs2 > rs * 1.8 && rs2 < rs * 2.2);
    }

    #[test]
    fn multiple_aggregates_add_base_terms() {
        let m = model();
        let c = ctx();
        let one = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        let mut two_q = AggregateQuery::simple("t", AggFunc::Sum, 1);
        two_q.aggregates.push(hsd_query::Aggregate {
            func: AggFunc::Avg,
            column: 1,
        });
        let two = Query::Aggregate(two_q);
        let c1 = estimate_query(&m, &c, &assign(StoreKind::Column), &one);
        let c2 = estimate_query(&m, &c, &assign(StoreKind::Column), &two);
        assert!(
            (c2 / c1 - 2.0).abs() < 1e-6,
            "two aggregates cost twice the base term"
        );
    }

    #[test]
    fn group_by_applies_constant() {
        let mut m = model();
        m.column.c_group_by = 3.0;
        let c = ctx();
        let mut q = AggregateQuery::simple("t", AggFunc::Sum, 1);
        let without = estimate_query(
            &m,
            &c,
            &assign(StoreKind::Column),
            &Query::Aggregate(q.clone()),
        );
        q.group_by = Some(1);
        let with = estimate_query(&m, &c, &assign(StoreKind::Column), &Query::Aggregate(q));
        assert!((with / without - 3.0).abs() < 1e-6);
    }

    #[test]
    fn inserts_prefer_row_store() {
        let m = model();
        let c = ctx();
        let q = Query::Insert(InsertQuery {
            table: "t".into(),
            rows: vec![vec![Value::BigInt(1), Value::Double(0.0)]; 10],
        });
        let rs = estimate_query(&m, &c, &assign(StoreKind::Row), &q);
        let cs = estimate_query(&m, &c, &assign(StoreKind::Column), &q);
        assert!(cs > rs);
        assert!((rs - 0.01).abs() < 1e-9); // 10 rows × 0.001
    }

    #[test]
    fn point_queries_hit_point_path() {
        let m = model();
        let c = ctx();
        let q = Query::Select(SelectQuery::point("t", 0, Value::BigInt(5)));
        let rs = estimate_query(&m, &c, &assign(StoreKind::Row), &q);
        assert!((rs - 0.002).abs() < 1e-9);
    }

    #[test]
    fn update_cost_scales_with_affected_rows() {
        let mut m = model();
        m.row.sel_per_row_scan = 1e-5;
        let c = ctx();
        let point = Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(1, Value::Double(0.0))],
            filter: vec![ColRange::eq(0, Value::BigInt(3))],
        });
        let range = Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(1, Value::Double(0.0))],
            filter: vec![ColRange::between(0, Value::BigInt(0), Value::BigInt(4999))],
        });
        let p = estimate_query(&m, &c, &assign(StoreKind::Row), &point);
        let r = estimate_query(&m, &c, &assign(StoreKind::Row), &range);
        assert!(r > p * 100.0, "range update much dearer than point update");
    }

    #[test]
    fn delta_tail_degrades_column_store_estimates_only() {
        let mut m = model();
        m.column.f_tail = AdjustmentFn::Linear {
            slope: 10.0,
            intercept: 1.0,
        };
        let clean = ctx();
        let mut tailed = EstimationCtx::new();
        let mut t = tctx(10_000);
        t.delta_tail = 1_000; // 10% tail -> factor 2.0
        tailed.insert("t", t);
        let agg = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        let cs_clean = estimate_query(&m, &clean, &assign(StoreKind::Column), &agg);
        let cs_tailed = estimate_query(&m, &tailed, &assign(StoreKind::Column), &agg);
        assert!(
            (cs_tailed / cs_clean - 2.0).abs() < 1e-9,
            "10% tail at slope 10 doubles the column scan estimate"
        );
        // The row store has no delta region: neutral f_tail, unchanged cost.
        let rs_clean = estimate_query(&m, &clean, &assign(StoreKind::Row), &agg);
        let rs_tailed = estimate_query(&m, &tailed, &assign(StoreKind::Row), &agg);
        assert!((rs_tailed - rs_clean).abs() < 1e-12);
        // Filtered scans pay the tail in the locate term as well.
        let mut m2 = m.clone();
        m2.column.sel_per_row_scan = 1e-4;
        let filtered = Query::Select(SelectQuery {
            table: "t".into(),
            columns: None,
            filter: vec![ColRange::ge(1, Value::Double(50.0))],
        });
        let f_clean = estimate_query(&m2, &clean, &assign(StoreKind::Column), &filtered);
        let f_tailed = estimate_query(&m2, &tailed, &assign(StoreKind::Column), &filtered);
        assert!(f_tailed > f_clean);
    }

    #[test]
    fn workload_estimate_sums_queries() {
        let m = model();
        let c = ctx();
        let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        let w = Workload::from_queries(vec![q.clone(), q.clone()]);
        let single = estimate_query(&m, &c, &assign(StoreKind::Column), &w.queries[0]);
        let total = estimate_workload(&m, &c, &assign(StoreKind::Column), &w);
        assert!((total - 2.0 * single).abs() < 1e-9);
    }

    #[test]
    fn observed_tail_rate_tightens_the_static_upper_bound() {
        use hsd_query::UpdateQuery;
        // Skewed-column workload: 100 update statements, each assigning 3
        // columns — the static upper bound charges 300 tail entries, but
        // the (observed) dictionaries only ever intern a handful of
        // distinct values.
        let queries: Vec<Query> = (0..100)
            .map(|i| {
                Query::Update(UpdateQuery {
                    table: "t".into(),
                    sets: vec![
                        (1, Value::Double(1.0)),
                        (1, Value::Double(2.0)),
                        (1, Value::Double(3.0)),
                    ],
                    filter: vec![ColRange::eq(0, Value::BigInt(i))],
                })
            })
            .chain(std::iter::once(Query::Aggregate(AggregateQuery::simple(
                "t",
                AggFunc::Sum,
                1,
            ))))
            .collect();
        let w = Workload::from_queries(queries);
        // Without feedback: the upper bound.
        let blind = workload_maintenance_drivers(&ctx(), &w);
        assert_eq!(blind["t"].tail_growth, 300.0);
        assert_eq!(blind["t"].scans, 1.0);
        // With an observed rate of 0.05 entries per write statement the
        // estimate collapses to 100 × 0.05 = 5 — the two diverge by 60×.
        let mut observed = ctx();
        observed.tables.get_mut("t").unwrap().observed_tail_rate = Some(0.05);
        let fed = workload_maintenance_drivers(&observed, &w);
        assert_eq!(fed["t"].tail_growth, 5.0);
        assert_eq!(fed["t"].scans, 1.0);
        // The observed rate can only tighten, never exceed, the bound.
        let mut inflated = ctx();
        inflated.tables.get_mut("t").unwrap().observed_tail_rate = Some(50.0);
        let capped = workload_maintenance_drivers(&inflated, &w);
        assert_eq!(capped["t"].tail_growth, 300.0);
    }

    #[test]
    fn layout_estimation_partitioned_aggregate() {
        let m = model();
        let c = ctx();
        let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        // 10% hot horizontal partition
        let mut layout = StorageLayout::new();
        layout.set(
            "t",
            TablePlacement::Partitioned(hsd_catalog::PartitionSpec {
                horizontal: Some(hsd_catalog::HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(9000),
                }),
                vertical: None,
                ..Default::default()
            }),
        );
        let partitioned = estimate_query_layout(&m, &c, &layout, &q);
        let mut cs_layout = StorageLayout::new();
        cs_layout.set("t", TablePlacement::Single(StoreKind::Column));
        let cs = estimate_query_layout(&m, &c, &cs_layout, &q);
        let mut rs_layout = StorageLayout::new();
        rs_layout.set("t", TablePlacement::Single(StoreKind::Row));
        let rs = estimate_query_layout(&m, &c, &rs_layout, &q);
        assert!(partitioned > cs, "partition pays RS scan on the hot 10%");
        assert!(partitioned < rs, "but stays far below full row store");
    }

    /// Disk-tier cold fragments pay the [`crate::cost::TierModel`]
    /// surcharges: scans a decode-bandwidth term, point reads a
    /// cold-weighted fetch latency, updates a segment rewrite cycle — and
    /// a memory-tier twin of the same split pays none of them.
    #[test]
    fn disk_tier_surcharges_scans_points_and_updates() {
        use hsd_query::{SelectQuery, UpdateQuery};
        let mut m = model();
        m.tier = crate::cost::TierModel::default_disk();
        let c = ctx();
        let layout_with = |tier: hsd_catalog::Tier| {
            let mut layout = StorageLayout::new();
            layout.set(
                "t",
                TablePlacement::Partitioned(hsd_catalog::PartitionSpec {
                    horizontal: Some(hsd_catalog::HorizontalSpec {
                        split_column: 0,
                        split_value: Value::BigInt(9000),
                    }),
                    vertical: None,
                    cold_tier: tier,
                }),
            );
            layout
        };
        let mem = layout_with(hsd_catalog::Tier::Memory);
        let disk = layout_with(hsd_catalog::Tier::Disk);

        let scan = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        let point = Query::Select(SelectQuery::point("t", 0, Value::BigInt(42)));
        let update = Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(1, Value::Double(1.0))],
            filter: vec![hsd_storage::ColRange::eq(0, Value::BigInt(42))],
        });
        for q in [&scan, &point, &update] {
            let on_mem = estimate_query_layout(&m, &c, &mem, q);
            let on_disk = estimate_query_layout(&m, &c, &disk, q);
            assert!(
                on_disk > on_mem,
                "disk tier must surcharge {q:?}: {on_disk} vs {on_mem}"
            );
        }
        // The rewrite cycle dwarfs a point fetch: the update surcharge must
        // exceed the point-select surcharge.
        let upd_delta = estimate_query_layout(&m, &c, &disk, &update)
            - estimate_query_layout(&m, &c, &mem, &update);
        let point_delta = estimate_query_layout(&m, &c, &disk, &point)
            - estimate_query_layout(&m, &c, &mem, &point);
        assert!(upd_delta > point_delta, "{upd_delta} > {point_delta}");
        // A neutral tier model prices the two tiers identically (back-compat
        // for models serialized before tier pricing existed).
        let neutral = model();
        for q in [&scan, &point, &update] {
            assert_eq!(
                estimate_query_layout(&neutral, &c, &mem, q),
                estimate_query_layout(&neutral, &c, &disk, q),
            );
        }
    }

    /// Satellite regression: a table with no [`TableCtx`] used to be priced
    /// as *free* under a partitioned placement, biasing every layout
    /// comparison toward partitioning. It must fall back to the single-store
    /// estimate instead — the same (nonzero, where the model charges one)
    /// price every other layout gets.
    #[test]
    fn stats_less_table_falls_back_to_single_store_estimate() {
        let m = model();
        let c = ctx(); // knows "t" but not "ghost"
        let ins = Query::Insert(InsertQuery {
            table: "ghost".into(),
            rows: vec![vec![Value::BigInt(1), Value::Double(0.0)]; 10],
        });
        let mut layout = StorageLayout::new();
        layout.set(
            "ghost",
            TablePlacement::Partitioned(hsd_catalog::PartitionSpec {
                horizontal: Some(hsd_catalog::HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(0),
                }),
                vertical: None,
                ..Default::default()
            }),
        );
        let partitioned = estimate_query_layout(&m, &c, &layout, &ins);
        let single = estimate_query(&m, &c, &BTreeMap::new(), &ins);
        assert!(single > 0.0, "row-store insert estimate is nonzero");
        assert_eq!(
            partitioned, single,
            "a stats-less table must cost the same under every layout"
        );
    }

    /// Satellite regression: a horizontal split column with *missing*
    /// statistics used to feed `Null` into the selectivity estimate, whose
    /// whole-domain fallback of 1.0 priced the partition as 100 % hot row
    /// store. Missing stats must mean "no horizontal split information"
    /// (hot fraction 0 — everything cold).
    #[test]
    fn missing_split_stats_price_partition_all_cold() {
        let m = model();
        let mut c = EstimationCtx::new();
        let mut t = tctx(10_000);
        t.stats.columns[0].min = None;
        t.stats.columns[0].max = None;
        c.insert("t", t);
        let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        let mut part = StorageLayout::new();
        part.set(
            "t",
            TablePlacement::Partitioned(hsd_catalog::PartitionSpec {
                horizontal: Some(hsd_catalog::HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(9000),
                }),
                vertical: None,
                ..Default::default()
            }),
        );
        let partitioned = estimate_query_layout(&m, &c, &part, &q);
        let cs = estimate_query(&m, &c, &assign(StoreKind::Column), &q);
        let rs = estimate_query(&m, &c, &assign(StoreKind::Row), &q);
        assert!(
            (partitioned - cs).abs() < 1e-9,
            "hot fraction 0: the aggregate scans only the cold column \
             fragment ({partitioned} vs cs {cs})"
        );
        assert!(partitioned < rs, "must not degrade to the row-store price");
    }

    #[test]
    fn fragment_drivers_route_hot_cold_and_vertical() {
        use hsd_catalog::{HorizontalSpec, PartitionSpec, VerticalSpec};
        use hsd_query::{InsertQuery, UpdateQuery};
        let c = ctx(); // "t": 10k rows, pk col 0
        let queries: Vec<Query> = (0..100)
            .map(|i| {
                Query::Insert(InsertQuery {
                    table: "t".into(),
                    rows: vec![vec![Value::BigInt(10_000 + i), Value::Double(0.0)]],
                })
            })
            .chain((0..40).map(|i| {
                Query::Update(UpdateQuery {
                    table: "t".into(),
                    sets: vec![(1, Value::Double(1e6 + i as f64))],
                    filter: vec![ColRange::eq(0, Value::BigInt(i))],
                })
            }))
            .chain(std::iter::repeat_n(
                Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1)),
                10,
            ))
            .collect();
        let w = Workload::from_queries(queries);
        // Single row store: no column region, no drivers.
        assert!(
            placement_fragment_drivers(&c, &w, "t", &TablePlacement::Single(StoreKind::Row))
                .is_none()
        );
        // Single column store: the full-table drivers (one entry per
        // inserted row + one per update assignment; every aggregate scans).
        let full =
            placement_fragment_drivers(&c, &w, "t", &TablePlacement::Single(StoreKind::Column))
                .unwrap();
        assert_eq!(full.rows, 10_000);
        assert_eq!(full.drivers.tail_growth, 140.0);
        assert_eq!(full.drivers.scans, 10.0);
        // Hot/cold split at 90 %: inserts are absorbed by the hot row-store
        // partition, update growth scales by the cold fraction, the cold
        // fragment holds ~90 % of the rows, and scans still pay in full.
        let hot_cold = TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(9000),
            }),
            vertical: None,
            ..Default::default()
        });
        let frag = placement_fragment_drivers(&c, &w, "t", &hot_cold).unwrap();
        let hot = crate::partition::horizontal_hot_fraction(
            &c.table("t").unwrap().stats,
            match &hot_cold {
                TablePlacement::Partitioned(s) => s,
                _ => unreachable!(),
            },
        );
        assert!(hot > 0.05 && hot < 0.15, "≈10% hot, got {hot}");
        assert_eq!(frag.rows, (10_000.0 * (1.0 - hot)).round() as usize);
        assert!(
            (frag.drivers.tail_growth - 40.0 * (1.0 - hot)).abs() < 1e-9,
            "inserts absorbed, updates scaled: {}",
            frag.drivers.tail_growth
        );
        assert_eq!(frag.drivers.scans, 10.0);
        // Vertical split putting the updated column into the row fragment:
        // the updates intern nothing in the column fragment either.
        let vertical = TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(9000),
            }),
            vertical: Some(VerticalSpec { row_cols: vec![1] }),
            ..Default::default()
        });
        let v = placement_fragment_drivers(&c, &w, "t", &vertical).unwrap();
        assert_eq!(v.drivers.tail_growth, 0.0);
        assert_eq!(v.drivers.scans, 10.0);
    }

    #[test]
    fn join_estimation_uses_combo_factor() {
        let mut m = model();
        m.join_factor = [[2.0, 4.0], [1.2, 1.5]];
        let mut c = ctx();
        c.insert("dim", tctx(100));
        let mut q = AggregateQuery::simple("t", AggFunc::Sum, 1);
        q.join = Some(hsd_query::JoinSpec {
            dim_table: "dim".into(),
            fact_fk: 0,
            dim_pk: 0,
            group_by_dim: Some(1),
        });
        let q = Query::Aggregate(q);
        let mut a = assign(StoreKind::Row);
        a.insert("dim".into(), StoreKind::Row);
        let rr = estimate_query(&m, &c, &a, &q);
        a.insert("dim".into(), StoreKind::Column);
        let rc = estimate_query(&m, &c, &a, &q);
        assert!(rc > rr, "factor 4 vs 2 for dim in CS");
    }
}
