//! The hybrid-store execution engine.
//!
//! [`database::HybridDatabase`] holds the catalog plus the physical data of
//! every table, where a table is either a single [`hsd_storage::Table`] or a
//! [`partition::TableData`] combination of a row-store *hot* partition and a
//! (possibly vertically split) *cold* partition — the storage layouts the
//! advisor recommends.
//!
//! The [`executor`] runs every query type of the paper's workloads against
//! whatever layout a table currently has; partitioned tables are rewritten
//! transparently (horizontal union with partial-aggregate merging, vertical
//! recombination over the shared primary key), mirroring Section 4's
//! "query rewriting must be realized automatically and transparently".
//!
//! The [`recorder`] accumulates the extended workload statistics of the
//! online mode, [`mover`] physically applies a recommended layout,
//! [`runner`] measures workload runtimes (the quantity every figure of the
//! paper reports), and [`worker`] drains advisor-scheduled delta merges in
//! bounded slices between query admissions (cooperatively, or on a
//! `std::thread` behind a config flag).

#![deny(missing_docs)]

pub mod checkpoint;
pub mod database;
pub mod durability;
pub mod executor;
pub mod maintenance;
pub mod mover;
pub mod partition;
pub mod recorder;
pub mod runner;
pub mod worker;

pub use checkpoint::{CheckpointReport, CHECKPOINT_RETAIN, CHECKPOINT_VERSION};
pub use database::HybridDatabase;
pub use database::{TableRead, TableShard, TableWrite};
pub use durability::{DegradedTable, DurabilityConfig, RecoveryReport, WalRecord};
pub use executor::{GroupRow, QueryOutput};
pub use maintenance::{MergeConfig, MergeMode};
pub use partition::{MergePartition, TableData, VerticalPair};
pub use recorder::{MergeSliceSample, OpClass, StatisticsRecorder, TimingSample};
pub use runner::{RunReport, WorkloadRunner};
pub use worker::{
    BackgroundWorker, MaintenanceWorker, MergeJob, MergePacer, PacerConfig, SharedDatabase,
    SliceReport, WorkerConfig, WorkerHealth, WorkerStats,
};
