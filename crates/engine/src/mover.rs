//! The data mover: physically applies a recommended storage layout.
//!
//! The paper presents recommendations "including the respective statements
//! to move the data into the recommended store"; this module is the engine
//! half of that — given a [`StorageLayout`], it rebuilds each table whose
//! placement changed, preserving every logical row.
//!
//! Every entry point takes `&HybridDatabase` and serializes against other
//! writers through the target table's shard latch, never a database-wide
//! lock: a merge slice on one table runs concurrently with scans and
//! writes on every other table. WAL records are appended while the latch
//! is held, so the per-table log order equals the apply order (the
//! recovery contract of [`crate::durability`]).

use hsd_catalog::{StorageLayout, TablePlacement, Tier};
use hsd_storage::{encode_segment, SegmentStore, Table};
use hsd_types::{Error, Result, Value};

use crate::database::HybridDatabase;
use crate::durability::WalRecord;
use crate::partition::{ColdPart, DiskFragment, MergePartition, TableData};

/// Segment name a table's demoted cold partition is stored under. One
/// stable name per table: demotion and every write-through republish
/// overwrite it atomically, so there is no segment garbage to collect.
pub(crate) fn cold_segment_name(table: &str) -> String {
    format!("{table}.cold")
}

/// Log a completed delta merge on a region (a one-shot fold or the final
/// slice of an incremental merge), reading the epoch from the *latched*
/// table data so the record is appended in apply order. No-op when no WAL
/// is attached.
fn log_merge_complete(
    db: &HybridDatabase,
    table: &str,
    partition: MergePartition,
    data: &TableData,
) -> Result<()> {
    if !db.wal_active() {
        return Ok(());
    }
    db.log_record(&WalRecord::MergeComplete {
        table: table.to_string(),
        partition,
        merge_epoch: data.merge_epoch(),
    })
}

/// Apply `layout` to the database. Tables whose placement already matches
/// are left untouched. Returns the names of the tables that were rebuilt.
pub fn apply_layout(db: &HybridDatabase, layout: &StorageLayout) -> Result<Vec<String>> {
    let mut moved = Vec::new();
    let names = db.table_names();
    for name in names {
        let target = layout.placement(&name);
        let current = db.catalog().entry_by_name(&name)?.placement.clone();
        if current == target {
            continue;
        }
        move_table(db, &name, &target)?;
        moved.push(name);
    }
    Ok(moved)
}

/// Rebuild one table under a new placement, preserving all rows.
///
/// The rebuild happens in place under the table's write latch (readers of
/// *other* tables are unaffected; readers of this table wait out the
/// rebuild), and the catalog annotation is updated only after the latch is
/// released — the mandatory lock order acquires catalog locks strictly
/// outside shard latches.
pub fn move_table(db: &HybridDatabase, table: &str, target: &TablePlacement) -> Result<()> {
    db.check_writable(table)?;
    let schema = db.catalog().entry_by_name(table)?.schema.clone();
    let shard = db.shard(table)?;
    let store = db.segment_store().clone();
    let target_is_disk = matches!(
        target,
        TablePlacement::Partitioned(spec) if spec.cold_tier == Tier::Disk
    );
    let had_segment;
    {
        let mut guard = shard.latch();
        // A disk-resident cold partition is promoted back to memory before
        // the drain (the Move record re-derives everything from the logical
        // rows, so no separate Promote record is needed — replay's
        // move_table does the same load).
        had_segment = promote_in_place(&mut guard, &store)?;
        // Drain the existing physical data.
        let old = std::mem::replace(
            &mut *guard,
            TableData::Single(Table::new(schema.clone(), hsd_storage::StoreKind::Row)),
        );
        let rows = old.into_rows();
        let mut fresh = TableData::new(schema, target)?;
        load_partition_aware(&mut fresh, target, rows)?;
        compact_after_load(&mut fresh);
        if target_is_disk {
            demote_in_place(&mut fresh, table, &store)?;
        }
        *guard = fresh;
        db.log_record(&WalRecord::Move {
            table: table.to_string(),
            placement: target.clone(),
        })?;
    }
    // The segment file is a derived cache; dropping it outside the latch is
    // safe (demotion re-published under the same name if the target is
    // disk-resident too).
    if had_segment && !target_is_disk {
        store.remove(&cold_segment_name(table))?;
    }
    let id = db.catalog().id_of(table)?;
    db.catalog_mut().set_placement(id, target.clone())?;
    db.refresh_stats(table)?;
    Ok(())
}

/// If `data`'s cold partition is disk-resident, load it back into memory in
/// place. Returns whether a segment was loaded (its name stays in the
/// store; the caller decides whether to drop or overwrite it).
fn promote_in_place(data: &mut TableData, store: &SegmentStore) -> Result<bool> {
    let TableData::Partitioned { cold, spec, .. } = data else {
        return Ok(false);
    };
    let ColdPart::DiskColumn(frag) = cold else {
        return Ok(false);
    };
    let loaded = frag.load(store)?;
    *cold = ColdPart::Single(loaded);
    spec.cold_tier = Tier::Memory;
    Ok(true)
}

/// Demote `data`'s (memory-resident, unsplit, column-store) cold partition
/// to a segment in place: encode, publish, and swap the stub in. The cold
/// partition should be compacted first — demotion encodes whatever delta
/// tail exists, but a folded dictionary packs tighter.
fn demote_in_place(data: &mut TableData, table: &str, store: &SegmentStore) -> Result<u64> {
    let TableData::Partitioned { cold, spec, .. } = data else {
        return Err(Error::InvalidOperation(format!(
            "table {table} is not partitioned; move it to a partitioned \
             placement before demoting"
        )));
    };
    match cold {
        ColdPart::DiskColumn(f) => Ok(f.disk_bytes), // already demoted
        ColdPart::Vertical(_) => Err(Error::InvalidOperation(format!(
            "table {table}: a vertically split cold partition cannot be \
             demoted (its row fragment serves point reads)"
        ))),
        ColdPart::Single(Table::Row(_)) => Err(Error::InvalidOperation(format!(
            "table {table}: cold partition is row-store resident; segments \
             hold column-store data only"
        ))),
        ColdPart::Single(Table::Column(ct)) => {
            let bytes = encode_segment(ct);
            let name = cold_segment_name(table);
            let stub = DiskFragment {
                schema: ct.schema().clone(),
                segment: name.clone(),
                rows: ct.row_count(),
                disk_bytes: bytes.len() as u64,
                merge_epoch: ct.merge_epoch(),
            };
            store.put(&name, bytes)?;
            let disk_bytes = stub.disk_bytes;
            *cold = ColdPart::DiskColumn(stub);
            spec.cold_tier = Tier::Disk;
            Ok(disk_bytes)
        }
    }
}

/// Demote `table`'s cold partition to an on-disk segment (the tier
/// counterpart of a store flip): compact the cold partition, encode it in
/// the segment format, publish atomically, and keep only a stub resident.
/// Idempotent — an already-demoted table just reports its segment size.
/// Returns the encoded segment's size in bytes.
///
/// Requires a partitioned layout whose cold partition is an unsplit column
/// store; vertically split cold partitions are rejected (the advisor never
/// proposes demoting them — their row fragment exists to serve point reads,
/// which disk residency would defeat).
pub fn demote_cold(db: &HybridDatabase, table: &str) -> Result<u64> {
    db.check_writable(table)?;
    let shard = db.shard(table)?;
    let store = db.segment_store().clone();
    let (disk_bytes, spec) = {
        let mut guard = shard.latch();
        if matches!(
            &*guard,
            TableData::Partitioned {
                cold: ColdPart::DiskColumn(_),
                ..
            }
        ) {
            // Already demoted: no state change, no WAL record.
            return Ok(guard.disk_bytes());
        }
        // Abandon in-flight shadow merges (their state is volatile and
        // unlogged) and fold the delta tail so the segment packs tight.
        guard.cancel_merge();
        guard.compact_deltas();
        let disk_bytes = demote_in_place(&mut guard, table, &store)?;
        db.log_record(&WalRecord::Demote {
            table: table.to_string(),
        })?;
        let TableData::Partitioned { spec, .. } = &*guard else {
            unreachable!("demote_in_place succeeded on a partitioned table");
        };
        (disk_bytes, spec.clone())
    };
    let id = db.catalog().id_of(table)?;
    db.catalog_mut()
        .set_placement(id, TablePlacement::Partitioned(spec))?;
    Ok(disk_bytes)
}

/// Promote `table`'s disk-resident cold partition back to memory, deleting
/// the segment. Idempotent — a memory-resident cold partition is a no-op.
pub fn promote_cold(db: &HybridDatabase, table: &str) -> Result<()> {
    db.check_writable(table)?;
    let shard = db.shard(table)?;
    let store = db.segment_store().clone();
    let spec = {
        let mut guard = shard.latch();
        if !promote_in_place(&mut guard, &store)? {
            return Ok(());
        }
        db.log_record(&WalRecord::Promote {
            table: table.to_string(),
        })?;
        let TableData::Partitioned { spec, .. } = &*guard else {
            unreachable!("promote_in_place succeeded on a partitioned table");
        };
        spec.clone()
    };
    store.remove(&cold_segment_name(table))?;
    let id = db.catalog().id_of(table)?;
    db.catalog_mut()
        .set_placement(id, TablePlacement::Partitioned(spec))?;
    Ok(())
}

/// Load rows respecting a horizontal split: historic rows (below the split
/// value) go to the cold partition, hot rows to the hot partition. Without
/// a horizontal split, everything goes through the normal insert path.
fn load_partition_aware(
    data: &mut TableData,
    target: &TablePlacement,
    rows: Vec<Vec<Value>>,
) -> Result<()> {
    match (data, target) {
        (
            TableData::Partitioned {
                hot: Some(hot),
                cold,
                spec,
                ..
            },
            TablePlacement::Partitioned(_),
        ) => {
            let h = spec
                .horizontal
                .clone()
                .expect("hot partition implies horizontal spec");
            for row in rows {
                if row[h.split_column] >= h.split_value {
                    hot.insert(&row)?;
                } else {
                    cold.insert(&row)?;
                }
            }
            Ok(())
        }
        (data, _) => {
            for row in rows {
                data.insert(&row)?;
            }
            Ok(())
        }
    }
}

fn compact_after_load(data: &mut TableData) {
    data.compact_deltas();
}

/// The explicit delta-merge maintenance entry point: fold the dictionary
/// tails of every column-store partition of `table` back into the sorted
/// region, returning how many tail entries were merged.
///
/// This is the engine half of advisor-scheduled maintenance — the online
/// advisor emits a merge action when the modeled scan savings exceed the
/// modeled merge cost, and applying that action lands here (with the
/// executor's auto-merge demoted to a fallback via
/// [`crate::maintenance::MergeConfig`]).
pub fn merge_delta(db: &HybridDatabase, table: &str) -> Result<usize> {
    db.check_writable(table)?;
    let shard = db.shard(table)?;
    let mut data = shard.latch();
    let folded = data.compact_deltas();
    if folded > 0 {
        log_merge_complete(db, table, MergePartition::Whole, &data)?;
    }
    Ok(folded)
}

/// [`merge_delta`] routed to one physical region: the cold partition's
/// column-store fragment for [`MergePartition::Cold`], every column-store
/// region for [`MergePartition::Whole`]. A `Cold` job whose table has since
/// moved back to a single store merges the whole table (the safe superset).
pub fn merge_delta_partition(
    db: &HybridDatabase,
    table: &str,
    partition: MergePartition,
) -> Result<usize> {
    db.check_writable(table)?;
    let shard = db.shard(table)?;
    let mut data = shard.latch();
    let folded = data.compact_deltas_partition(partition);
    if folded > 0 {
        log_merge_complete(db, table, partition, &data)?;
    }
    Ok(folded)
}

/// One bounded slice of an **incremental** delta merge: remap at most
/// `budget_rows` code-vector entries of `table`'s column-store region, then
/// return control to the caller.
///
/// The merge state is resumable — repeated calls continue where the last one
/// stopped, and queries executed between slices observe a fully consistent
/// table (the shadow-rebuild protocol of
/// [`hsd_storage::ColumnTable::compact_step`]). This is how very large
/// tables avoid the full-table stop-the-world remap of
/// [`merge_delta`]: the same total work is spread over many short pauses,
/// each bounded by the remap-cost budget.
pub fn merge_delta_step(
    db: &HybridDatabase,
    table: &str,
    budget_rows: usize,
) -> Result<hsd_storage::MergeProgress> {
    db.check_writable(table)?;
    let shard = db.shard(table)?;
    let mut data = shard.latch();
    let progress = data.compact_deltas_step(budget_rows);
    if progress.done && (progress.entries_folded > 0 || progress.rows_remapped > 0) {
        log_merge_complete(db, table, MergePartition::Whole, &data)?;
    }
    Ok(progress)
}

/// [`merge_delta_step`] routed to one physical region (the routing rules of
/// [`merge_delta_partition`]): an advisor-scheduled cold-fragment merge
/// slices only the cold partition's column-store fragment, never touching
/// the hot row-store partition the serving loop is writing into.
pub fn merge_delta_step_partition(
    db: &HybridDatabase,
    table: &str,
    partition: MergePartition,
    budget_rows: usize,
) -> Result<hsd_storage::MergeProgress> {
    db.check_writable(table)?;
    let shard = db.shard(table)?;
    let mut data = shard.latch();
    let progress = data.compact_deltas_step_partition(partition, budget_rows);
    // An incremental merge is logged only at completion: in-flight shadow
    // state is deliberately volatile (recovery discards it losslessly and
    // re-merges from the completion record instead).
    if progress.done && (progress.entries_folded > 0 || progress.rows_remapped > 0) {
        log_merge_complete(db, table, partition, &data)?;
    }
    Ok(progress)
}

/// One merge slice split into a **concurrent plan phase and a brief
/// install phase** — the maintenance worker's read-path-friendly variant
/// of [`merge_delta_step_partition`].
///
/// Phase 1 computes dictionary rebuild plans ([`hsd_storage::MergePlan`])
/// under a shared read pin: the sort-heavy half of starting a merge runs
/// *concurrently with scans* on the same table. Phase 2 takes the
/// exclusive latch only to adopt the plans (stale ones — a dictionary
/// handoff completed in between — are discarded and replanned by the
/// in-latch fallback) and remap one `budget_rows`-bounded slice. The
/// latch hold time is therefore O(budget), never O(distinct values ·
/// log) for the sort.
pub fn merge_slice_concurrent(
    db: &HybridDatabase,
    table: &str,
    partition: MergePartition,
    budget_rows: usize,
) -> Result<hsd_storage::MergeProgress> {
    db.check_writable(table)?;
    let shard = db.shard(table)?;
    // Phase 1 (concurrent with scans): plan under a shared read pin.
    let plans = {
        let pin = shard.pin();
        pin.plan_compact_partition(partition)
    };
    // Phase 2 (brief): install + one budgeted slice under the latch.
    let mut data = shard.latch();
    if !plans.is_empty() {
        data.install_compact_plans(partition, plans);
    }
    let progress = data.compact_deltas_step_partition(partition, budget_rows);
    if progress.done && (progress.entries_folded > 0 || progress.rows_remapped > 0) {
        log_merge_complete(db, table, partition, &data)?;
    }
    Ok(progress)
}

/// Cancel an in-flight incremental delta merge on `table`, abandoning the
/// shadow rebuild (the live dictionary and codes stayed authoritative
/// throughout, so no data is lost — only the remap work done so far).
///
/// This is the engine half of a retracted maintenance decision: when the
/// advisor withdraws a scheduled merge whose justification evaporated (see
/// `hsd_core`'s `MaintenanceAction::Retract`), the worker lands here.
/// Returns how many columns had a merge to cancel.
pub fn cancel_merge(db: &HybridDatabase, table: &str) -> Result<usize> {
    let shard = db.shard(table)?;
    let cancelled = shard.latch().cancel_merge();
    Ok(cancelled)
}

/// Move rows that have aged out of the hot partition into the cold
/// partition ("in certain intervals, data is moved from the row-store
/// partition to the column-store partition"). Rows still satisfying the
/// hot predicate stay. Returns how many rows were moved.
pub fn rebalance_horizontal(
    db: &HybridDatabase,
    table: &str,
    new_split_value: &Value,
) -> Result<usize> {
    db.check_writable(table)?;
    let shard = db.shard(table)?;
    let (moved, spec) = {
        let mut guard = shard.latch();
        let TableData::Partitioned {
            hot: Some(hot),
            cold,
            spec,
            schema,
            hot_pure,
        } = &mut *guard
        else {
            return Err(hsd_types::Error::InvalidOperation(format!(
                "table {table} has no hot partition to rebalance"
            )));
        };
        let Some(h) = spec.horizontal.as_mut() else {
            return Err(hsd_types::Error::InvalidOperation(format!(
                "table {table} has no horizontal spec"
            )));
        };
        // Drain the hot partition and re-split under the new boundary.
        let drained =
            std::mem::replace(hot, Table::new(schema.clone(), hsd_storage::StoreKind::Row));
        let mut moved = 0;
        for row in drained.into_rows() {
            if row[h.split_column] >= *new_split_value {
                hot.insert(&row)?;
            } else {
                cold.insert(&row)?;
                moved += 1;
            }
        }
        h.split_value = new_split_value.clone();
        // The re-split is strict, so the hot partition is pure again.
        *hot_pure = true;
        if let ColdPart::Single(Table::Column(ct)) = cold {
            ct.compact();
        } else if let ColdPart::Vertical(p) = cold {
            p.compact_column_fragment();
        }
        db.log_record(&WalRecord::Rebalance {
            table: table.to_string(),
            split_value: new_split_value.clone(),
        })?;
        (moved, spec.clone())
    };
    // Keep the catalog annotation in sync (catalog locks are acquired
    // strictly outside shard latches).
    let id = db.catalog().id_of(table)?;
    db.catalog_mut()
        .set_placement(id, TablePlacement::Partitioned(spec))?;
    db.refresh_stats(table)?;
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_catalog::{HorizontalSpec, PartitionSpec, VerticalSpec};
    use hsd_storage::StoreKind;
    use hsd_types::{ColumnDef, ColumnType, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("v", ColumnType::Double),
                ColumnDef::new("st", ColumnType::Integer),
            ],
            vec![0],
        )
        .unwrap()
    }

    fn loaded_db() -> HybridDatabase {
        let db = HybridDatabase::new();
        db.create_single(schema(), StoreKind::Row).unwrap();
        db.bulk_load(
            "t",
            (0..100).map(|i| vec![Value::BigInt(i), Value::Double(i as f64), Value::Int(0)]),
        )
        .unwrap();
        db
    }

    fn checksum(db: &HybridDatabase) -> f64 {
        use hsd_query::{AggFunc, AggregateQuery, Query};
        let out = db
            .execute(&Query::Aggregate(AggregateQuery::simple(
                "t",
                AggFunc::Sum,
                1,
            )))
            .unwrap();
        out.aggregates().unwrap()[0].values[0]
    }

    #[test]
    fn move_single_to_single() {
        let db = loaded_db();
        let before = checksum(&db);
        let mut layout = StorageLayout::new();
        layout.set("t", TablePlacement::Single(StoreKind::Column));
        let moved = apply_layout(&db, &layout).unwrap();
        assert_eq!(moved, vec!["t".to_string()]);
        assert_eq!(
            db.catalog().single_store_of("t").unwrap(),
            StoreKind::Column
        );
        assert_eq!(checksum(&db), before);
        assert_eq!(db.row_count("t").unwrap(), 100);
        // applying again is a no-op
        assert!(apply_layout(&db, &layout).unwrap().is_empty());
    }

    #[test]
    fn move_to_partitioned_splits_rows() {
        let db = loaded_db();
        let before = checksum(&db);
        let placement = TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(90),
            }),
            vertical: Some(VerticalSpec { row_cols: vec![2] }),
            ..Default::default()
        });
        let mut layout = StorageLayout::new();
        layout.set("t", placement);
        apply_layout(&db, &layout).unwrap();
        assert_eq!(checksum(&db), before);
        let shard = db.shard("t").unwrap();
        let pin = shard.pin();
        match &*pin {
            TableData::Partitioned {
                hot: Some(h), cold, ..
            } => {
                assert_eq!(h.row_count(), 10);
                assert_eq!(cold.row_count(), 90);
                match cold {
                    ColdPart::Vertical(p) => p.check_alignment().unwrap(),
                    other => panic!("expected vertical cold partition, got {other:?}"),
                }
            }
            other => panic!("expected partitioned table, got {other:?}"),
        }
    }

    #[test]
    fn move_back_to_single_restores_all_rows() {
        let db = loaded_db();
        let before = checksum(&db);
        let mut layout = StorageLayout::new();
        layout.set(
            "t",
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(50),
                }),
                vertical: None,
                ..Default::default()
            }),
        );
        apply_layout(&db, &layout).unwrap();
        let mut back = StorageLayout::new();
        back.set("t", TablePlacement::Single(StoreKind::Row));
        apply_layout(&db, &back).unwrap();
        assert_eq!(db.row_count("t").unwrap(), 100);
        assert_eq!(checksum(&db), before);
    }

    #[test]
    fn rebalance_moves_aged_rows() {
        let db = loaded_db();
        let mut layout = StorageLayout::new();
        layout.set(
            "t",
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(80),
                }),
                vertical: None,
                ..Default::default()
            }),
        );
        apply_layout(&db, &layout).unwrap();
        // age the boundary: only ids >= 95 stay hot
        let moved = rebalance_horizontal(&db, "t", &Value::BigInt(95)).unwrap();
        assert_eq!(moved, 15);
        let shard = db.shard("t").unwrap();
        let pin = shard.pin();
        match &*pin {
            TableData::Partitioned {
                hot: Some(h), cold, ..
            } => {
                assert_eq!(h.row_count(), 5);
                assert_eq!(cold.row_count(), 95);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(db.row_count("t").unwrap(), 100);
    }

    #[test]
    fn rebalance_rejects_unpartitioned() {
        let db = loaded_db();
        assert!(rebalance_horizontal(&db, "t", &Value::BigInt(5)).is_err());
    }

    #[test]
    fn chunked_merge_preserves_results_and_is_resumable() {
        use hsd_query::{Query, UpdateQuery};
        use hsd_storage::ColRange;
        let db = loaded_db();
        let mut layout = StorageLayout::new();
        layout.set("t", TablePlacement::Single(StoreKind::Column));
        apply_layout(&db, &layout).unwrap();
        db.set_merge_config(crate::maintenance::MergeConfig::disabled());
        let before = checksum(&db);
        for i in 0..30 {
            db.execute(&Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(5000.0 + i as f64))],
                filter: vec![ColRange::eq(0, Value::BigInt(i))],
            }))
            .unwrap();
        }
        let tail = db.delta_tail("t").unwrap();
        assert!(tail >= 30);
        // Drive the merge in 16-row slices, querying between slices.
        let mut slices = 0;
        let mut folded = 0;
        loop {
            let p = merge_delta_step(&db, "t", 16).unwrap();
            folded += p.entries_folded;
            slices += 1;
            // Mid-merge queries must see consistent data.
            let hits = db
                .execute(&Query::Select(hsd_query::SelectQuery {
                    table: "t".into(),
                    columns: None,
                    filter: vec![ColRange::ge(1, Value::Double(5000.0))],
                }))
                .unwrap();
            assert_eq!(hits.rows().unwrap().len(), 30);
            if p.done {
                break;
            }
            assert!(slices < 100, "chunked merge must terminate");
        }
        assert!(slices > 1, "a 16-row budget over 100 rows takes slices");
        assert_eq!(folded, tail);
        assert_eq!(db.delta_tail("t").unwrap(), 0);
        let after = checksum(&db);
        assert!(
            (after
                - (before - (0..30).map(|i| i as f64).sum::<f64>()
                    + (0..30).map(|i| 5000.0 + i as f64).sum::<f64>()))
            .abs()
                < 1e-6
        );
    }

    #[test]
    fn concurrent_slice_plans_under_pin_and_installs_under_latch() {
        use hsd_query::{Query, UpdateQuery};
        use hsd_storage::ColRange;
        let db = loaded_db();
        let mut layout = StorageLayout::new();
        layout.set("t", TablePlacement::Single(StoreKind::Column));
        apply_layout(&db, &layout).unwrap();
        db.set_merge_config(crate::maintenance::MergeConfig::disabled());
        for i in 0..25 {
            db.execute(&Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(9000.0 + i as f64))],
                filter: vec![ColRange::eq(0, Value::BigInt(i))],
            }))
            .unwrap();
        }
        let tail = db.delta_tail("t").unwrap();
        assert!(tail >= 25);
        let mut folded = 0;
        let mut slices = 0;
        loop {
            let p = merge_slice_concurrent(&db, "t", MergePartition::Whole, 16).unwrap();
            folded += p.entries_folded;
            slices += 1;
            if p.done {
                break;
            }
            assert!(slices < 200, "two-phase merge must terminate");
        }
        assert_eq!(folded, tail);
        assert_eq!(db.delta_tail("t").unwrap(), 0);
        assert!(!db.merge_in_progress("t").unwrap());
    }

    /// Horizontal hot/cold split at id < 90 (cold gets 90 rows).
    fn split_placement(cold_tier: Tier) -> TablePlacement {
        TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(90),
            }),
            vertical: None,
            cold_tier,
        })
    }

    fn cold_is_disk(db: &HybridDatabase) -> bool {
        let shard = db.shard("t").unwrap();
        let pin = shard.pin();
        matches!(
            &*pin,
            TableData::Partitioned {
                cold: ColdPart::DiskColumn(_),
                ..
            }
        )
    }

    #[test]
    fn demote_promote_cycle_preserves_data() {
        let db = loaded_db();
        let before = checksum(&db);
        let mut layout = StorageLayout::new();
        layout.set("t", split_placement(Tier::Memory));
        apply_layout(&db, &layout).unwrap();

        let bytes = demote_cold(&db, "t").unwrap();
        assert!(bytes > 0);
        assert!(cold_is_disk(&db));
        assert_eq!(db.disk_bytes("t").unwrap(), bytes);
        // Idempotent: a second demotion reports the same size, no rewrite.
        assert_eq!(demote_cold(&db, "t").unwrap(), bytes);
        // Catalog reflects the tier.
        match &db.catalog().entry_by_name("t").unwrap().placement {
            TablePlacement::Partitioned(spec) => assert_eq!(spec.cold_tier, Tier::Disk),
            other => panic!("expected partitioned placement, got {other:?}"),
        }
        // Queries decode the segment per scan.
        assert_eq!(checksum(&db), before);
        assert_eq!(db.row_count("t").unwrap(), 100);

        promote_cold(&db, "t").unwrap();
        assert!(!cold_is_disk(&db));
        assert_eq!(db.disk_bytes("t").unwrap(), 0);
        assert_eq!(checksum(&db), before);
        // The segment is gone; promoting again is a no-op.
        assert!(db.segment_store().get(&cold_segment_name("t")).is_err());
        promote_cold(&db, "t").unwrap();
    }

    #[test]
    fn write_through_update_republishes_segment() {
        use hsd_query::{Query, UpdateQuery};
        use hsd_storage::ColRange;
        let db = loaded_db();
        let mut layout = StorageLayout::new();
        layout.set("t", split_placement(Tier::Memory));
        apply_layout(&db, &layout).unwrap();
        let before = checksum(&db);
        demote_cold(&db, "t").unwrap();
        // Point update of a cold row: write-through load, apply, republish.
        db.execute(&Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(1, Value::Double(7777.0))],
            filter: vec![ColRange::eq(0, Value::BigInt(3))],
        }))
        .unwrap();
        assert!(cold_is_disk(&db), "table stays demoted after write-through");
        assert!((checksum(&db) - (before - 3.0 + 7777.0)).abs() < 1e-6);
        // Hot-partition update leaves the segment untouched.
        let seg_before = db.disk_bytes("t").unwrap();
        db.execute(&Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(1, Value::Double(8888.0))],
            filter: vec![ColRange::eq(0, Value::BigInt(95))],
        }))
        .unwrap();
        assert_eq!(db.disk_bytes("t").unwrap(), seg_before);
    }

    #[test]
    fn demote_rejects_vertical_and_unpartitioned() {
        let db = loaded_db();
        assert!(demote_cold(&db, "t").is_err(), "single table: no cold part");
        let mut layout = StorageLayout::new();
        layout.set(
            "t",
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(90),
                }),
                vertical: Some(VerticalSpec { row_cols: vec![2] }),
                ..Default::default()
            }),
        );
        apply_layout(&db, &layout).unwrap();
        assert!(
            demote_cold(&db, "t").is_err(),
            "vertically split cold partitions stay memory-resident"
        );
    }

    #[test]
    fn move_away_from_disk_tier_drops_segment() {
        let db = loaded_db();
        let before = checksum(&db);
        let mut layout = StorageLayout::new();
        layout.set("t", split_placement(Tier::Disk));
        apply_layout(&db, &layout).unwrap();
        assert!(
            cold_is_disk(&db),
            "move_table demotes when the spec says so"
        );
        assert_eq!(checksum(&db), before);

        // Re-split at a different boundary, still disk: segment rewritten.
        let mut resplit = StorageLayout::new();
        resplit.set(
            "t",
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(50),
                }),
                vertical: None,
                cold_tier: Tier::Disk,
            }),
        );
        apply_layout(&db, &resplit).unwrap();
        assert!(cold_is_disk(&db));
        assert_eq!(checksum(&db), before);

        // Move back to a single store: the segment is deleted.
        let mut back = StorageLayout::new();
        back.set("t", TablePlacement::Single(StoreKind::Column));
        apply_layout(&db, &back).unwrap();
        assert_eq!(checksum(&db), before);
        assert_eq!(db.row_count("t").unwrap(), 100);
        assert!(db.segment_store().get(&cold_segment_name("t")).is_err());
    }
}
