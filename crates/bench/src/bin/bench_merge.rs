//! Merge-policy ablation, recorded as `BENCH_merge.json`.
//!
//! Runs one mixed read/write workload (fresh-value point updates that grow
//! the delta tail, interleaved with range-filtered aggregations that pay
//! for it) under three delta-merge policies:
//!
//! * **always-merge** — the engine compacts after every write statement;
//! * **never-merge** — tails accumulate for the whole run;
//! * **advisor-scheduled** — engine auto-merge disabled, the
//!   [`OnlineAdvisor`] schedules merges when the cost model's expected scan
//!   savings exceed its merge cost.
//!
//! The acceptance claim of the maintenance PR is that the advisor-scheduled
//! policy beats both fixed policies on this workload. A second section
//! measures the dense group-by path (per-code accumulator array) against
//! the hash-map baseline on a low-cardinality group column.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_merge`
//! (`-- --smoke` for the small CI configuration). A committed
//! `cost_model.json` is used for the advisor's model when present;
//! otherwise a quick calibration runs first.

use std::time::Instant;

use hsd_core::{CostModel, OnlineAdvisor, OnlineConfig, StorageAdvisor};
use hsd_engine::{executor, HybridDatabase, MergeConfig, WorkloadRunner};
use hsd_query::{AggFunc, Aggregate, AggregateQuery, Query, TableSpec, UpdateQuery, Workload};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{Json, Value};

struct Scale {
    rows: usize,
    statements: usize,
    groupby_runs: usize,
    smoke: bool,
}

impl Scale {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        if smoke {
            Scale {
                rows: 20_000,
                statements: 600,
                groupby_runs: 5,
                smoke: true,
            }
        } else {
            Scale {
                rows: 200_000,
                statements: 3_000,
                groupby_runs: 9,
                smoke: false,
            }
        }
    }
}

fn spec(rows: usize) -> TableSpec {
    TableSpec::paper_wide("m", rows, 0xBE9C)
}

fn build_db(spec: &TableSpec) -> HybridDatabase {
    let db = HybridDatabase::new();
    db.create_single(spec.schema().expect("schema"), StoreKind::Column)
        .expect("create");
    db.bulk_load("m", spec.rows()).expect("load");
    db
}

/// Mixed stream: even statements are fresh-value point updates (each adds
/// one dictionary-tail entry), odd statements are range-filtered sums over
/// the updated keyfigure — the scan shape that pays the tail penalty
/// (tail codes disable the fused scan kernel).
fn mixed_workload(s: &TableSpec, statements: usize) -> Workload {
    let kf = s.kf_col(0);
    let scan = Query::Aggregate(AggregateQuery {
        table: s.name.clone(),
        aggregates: vec![Aggregate {
            func: AggFunc::Sum,
            column: kf,
        }],
        group_by: None,
        filter: vec![ColRange::ge(kf, Value::Double(0.0))],
        join: None,
    });
    let queries = (0..statements)
        .map(|i| {
            if i % 2 == 0 {
                Query::Update(UpdateQuery {
                    table: s.name.clone(),
                    sets: vec![(kf, Value::Double(8.8e8 + i as f64 * 0.019))],
                    filter: vec![ColRange::eq(0, Value::BigInt(((i * 37) % s.rows) as i64))],
                })
            } else {
                scan.clone()
            }
        })
        .collect();
    Workload::from_queries(queries)
}

struct PolicyResult {
    name: &'static str,
    total_ms: f64,
    merges: usize,
    tail_after: usize,
}

impl PolicyResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("policy", Json::Str(self.name.to_string())),
            ("total_ms", Json::Num(self.total_ms)),
            ("merges", Json::Int(self.merges as i64)),
            ("tail_after", Json::Int(self.tail_after as i64)),
        ])
    }
}

fn run_fixed(
    name: &'static str,
    s: &TableSpec,
    workload: &Workload,
    cfg: MergeConfig,
    merges_per_write: bool,
) -> PolicyResult {
    let db = build_db(s);
    db.set_merge_config(cfg);
    let report = WorkloadRunner::new().run(&db, workload).expect("run");
    let writes = workload
        .queries
        .iter()
        .filter(|q| matches!(q, Query::Update(_) | Query::Insert(_)))
        .count();
    PolicyResult {
        name,
        total_ms: report.total_ms(),
        merges: if merges_per_write { writes } else { 0 },
        tail_after: db.delta_tail("m").expect("tail"),
    }
}

fn run_advisor(s: &TableSpec, workload: &Workload, model: CostModel) -> PolicyResult {
    let db = build_db(s);
    db.set_merge_config(MergeConfig::disabled());
    let mut online = OnlineAdvisor::new(
        StorageAdvisor::new(model),
        OnlineConfig {
            // This run compares merge policies only: layout re-evaluation
            // is parked so every policy executes on the same layout.
            evaluation_interval: usize::MAX,
            maintenance_interval: 32,
            merge_min_tail: 64,
            merge_safety_factor: 1.0,
            ..Default::default()
        },
    );
    let mut merges = 0usize;
    let report = WorkloadRunner::new()
        .run_observed(&db, workload, |db, q| {
            online.observe(db, q)?;
            for action in online.take_maintenance() {
                action.apply(db)?;
                merges += 1;
            }
            Ok(())
        })
        .expect("run");
    PolicyResult {
        name: "advisor-scheduled",
        total_ms: report.total_ms(),
        merges,
        tail_after: db.delta_tail("m").expect("tail"),
    }
}

/// Median wall-clock ms of `runs` executions of the grouped aggregation.
fn time_groupby(db: &HybridDatabase, q: &Query, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(db.execute(q).expect("group-by"));
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let scale = Scale::from_args();
    let s = spec(scale.rows);
    eprintln!(
        "[bench_merge] {} rows, {} statements{}",
        scale.rows,
        scale.statements,
        if scale.smoke { " (smoke)" } else { "" }
    );
    let model = hsd_bench::advisor_model_or_calibrate("bench_merge", scale.smoke);
    let workload = mixed_workload(&s, scale.statements);

    let mut results = Vec::new();
    for (name, cfg, per_write) in [
        ("always-merge", MergeConfig::always(), true),
        ("never-merge", MergeConfig::disabled(), false),
    ] {
        let r = run_fixed(name, &s, &workload, cfg, per_write);
        eprintln!(
            "[bench_merge] {:<18} {:>9.1} ms  ({} merges, tail after: {})",
            r.name, r.total_ms, r.merges, r.tail_after
        );
        results.push(r);
    }
    let adv = run_advisor(&s, &workload, model);
    eprintln!(
        "[bench_merge] {:<18} {:>9.1} ms  ({} merges, tail after: {})",
        adv.name, adv.total_ms, adv.merges, adv.tail_after
    );
    let always_ms = results[0].total_ms;
    let never_ms = results[1].total_ms;
    let beats_always = adv.total_ms < always_ms;
    let beats_never = adv.total_ms < never_ms;
    eprintln!(
        "[bench_merge] advisor vs always: {:.2}x, vs never: {:.2}x -> {}",
        always_ms / adv.total_ms,
        never_ms / adv.total_ms,
        if beats_always && beats_never {
            "PASS"
        } else {
            "FAIL"
        }
    );
    results.push(adv);

    // --- dense group-by ablation -------------------------------------------
    // Low-cardinality group column (cardinality 100): the dense per-code
    // accumulator path vs the hash-map path on identical data.
    let db = build_db(&s);
    let gq = Query::Aggregate(AggregateQuery {
        table: s.name.clone(),
        aggregates: vec![Aggregate {
            func: AggFunc::Sum,
            column: s.kf_col(0),
        }],
        group_by: Some(s.grp_col(0)),
        filter: vec![],
        join: None,
    });
    executor::set_dense_group_by(false);
    let hash_ms = time_groupby(&db, &gq, scale.groupby_runs);
    executor::set_dense_group_by(true);
    let dense_ms = time_groupby(&db, &gq, scale.groupby_runs);
    let gb_speedup = hash_ms / dense_ms;
    let gb_pass = dense_ms < hash_ms;
    eprintln!(
        "[bench_merge] group-by dense {dense_ms:.3} ms vs hash {hash_ms:.3} ms \
         ({gb_speedup:.2}x) -> {}",
        if gb_pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("benchmark", Json::Str("merge_policy".to_string())),
        ("rows", Json::Int(scale.rows as i64)),
        ("statements", Json::Int(scale.statements as i64)),
        ("smoke", Json::Bool(scale.smoke)),
        (
            "policies",
            Json::Arr(results.iter().map(PolicyResult::to_json).collect()),
        ),
        ("advisor_beats_always", Json::Bool(beats_always)),
        ("advisor_beats_never", Json::Bool(beats_never)),
        (
            "dense_groupby",
            Json::obj([
                ("hash_ms", Json::Num(hash_ms)),
                ("dense_ms", Json::Num(dense_ms)),
                ("speedup", Json::Num(gb_speedup)),
                ("pass", Json::Bool(gb_pass)),
            ]),
        ),
        ("pass", Json::Bool(beats_always && beats_never && gb_pass)),
    ]);
    std::fs::write("BENCH_merge.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_merge.json");
    eprintln!("[bench_merge] wrote BENCH_merge.json");
    if !(beats_always && beats_never && gb_pass) {
        std::process::exit(1);
    }
}
