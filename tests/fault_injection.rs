//! Crash-consistency invariant for the WAL + recovery subsystem: for every
//! injected crash offset, recovering from the byte prefix of the log must
//! reconstruct exactly the committed statement prefix — torn tails are
//! truncated, never replayed; interior corruption quarantines only the
//! affected table; transient I/O faults are absorbed by the writer's retry
//! loop without losing a record.
//!
//! The oracle is the live database itself: after every committed statement
//! the harness checkpoints `(log length, canonical probe of table contents)`
//! against the in-memory WAL image, then replays truncated copies of that
//! image through [`HybridDatabase::recover_bytes`] and compares.

use std::ops::Bound;

use proptest::prelude::*;

use hybrid_store_advisor::engine::QueryOutput;
use hybrid_store_advisor::prelude::*;
use hybrid_store_advisor::storage::wal::HEADER_LEN;
use hybrid_store_advisor::storage::{
    scan_frames, FaultFile, FaultPlan, MemBackend, RetryPolicy, SyncPolicy, WalWriter,
};
use hybrid_store_advisor::types::Error;

fn schema(name: &str) -> TableSchema {
    TableSchema::new(
        name,
        vec![
            ColumnDef::new("id", ColumnType::BigInt),
            ColumnDef::new("kf", ColumnType::Double),
            ColumnDef::new("grp", ColumnType::Integer),
        ],
        vec![0],
    )
    .unwrap()
}

fn row(id: i64, salt: i64) -> Vec<Value> {
    vec![
        Value::BigInt(id),
        Value::Double(salt as f64 * 0.125),
        Value::Int((id % 7) as i32),
    ]
}

/// Canonical table contents: full scan, sorted by primary key so the probe
/// is independent of physical layout and merge state.
fn probe(db: &HybridDatabase, table: &str) -> Vec<Vec<Value>> {
    let out = db
        .execute(&Query::Select(SelectQuery {
            table: table.into(),
            columns: None,
            filter: vec![],
        }))
        .unwrap();
    let mut rows = match out {
        QueryOutput::Rows(r) => r,
        other => panic!("probe expected rows, got {other:?}"),
    };
    rows.sort_by_key(|r| match &r[0] {
        Value::BigInt(i) => *i,
        v => panic!("non-bigint key {v:?}"),
    });
    rows
}

/// A statement of the randomized stream. Every variant appends at most one
/// WAL frame, so statement checkpoints and frame boundaries coincide and a
/// cut strictly between two checkpoints always lands mid-frame.
#[derive(Debug, Clone)]
enum Stmt {
    Insert { id: i64, salt: i64 },
    Update { id: i64, salt: i64 },
    Merge,
    Move(TablePlacement),
    Demote,
    Promote,
}

fn apply_stmt(db: &HybridDatabase, s: &Stmt) {
    // Failed statements (e.g. duplicate-key inserts in the random stream)
    // commit nothing and log nothing, so they leave the checkpoint as-is.
    match s {
        Stmt::Insert { id, salt } => {
            let _ = db.execute(&Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![row(*id, *salt)],
            }));
        }
        Stmt::Update { id, salt } => {
            let _ = db.execute(&Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(1e6 + *salt as f64 * 0.013))],
                filter: vec![ColRange::eq(0, Value::BigInt(*id))],
            }));
        }
        Stmt::Merge => {
            mover::merge_delta(db, "t").unwrap();
        }
        Stmt::Move(placement) => {
            mover::move_table(db, "t", placement).unwrap();
        }
        // Demotion is only legal for horizontally-partitioned tables without
        // a vertical split; in the random stream the placement may be
        // anything, so tolerate the rejection (it logs nothing).
        Stmt::Demote => {
            let _ = mover::demote_cold(db, "t");
        }
        Stmt::Promote => {
            let _ = mover::promote_cold(db, "t");
        }
    }
}

fn insert_stmt() -> impl Strategy<Value = Stmt> {
    (100i64..400, 0i64..1000).prop_map(|(id, salt)| Stmt::Insert { id, salt })
}

fn update_stmt() -> impl Strategy<Value = Stmt> {
    (0i64..100, 0i64..1000).prop_map(|(id, salt)| Stmt::Update { id, salt })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let merge = (0u32..1).prop_map(|_| Stmt::Merge);
    let mv = (0u32..4).prop_map(|i| {
        Stmt::Move(match i {
            0 => TablePlacement::Single(StoreKind::Column),
            1 => TablePlacement::Single(StoreKind::Row),
            2 => TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(48),
                }),
                vertical: Some(VerticalSpec { row_cols: vec![2] }),
                ..Default::default()
            }),
            // Straight into a disk-resident cold partition: the move itself
            // writes a segment, so cuts can land inside its WAL frame.
            _ => TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(48),
                }),
                vertical: None,
                cold_tier: Tier::Disk,
            }),
        })
    });
    let demote = (0u32..1).prop_map(|_| Stmt::Demote);
    let promote = (0u32..1).prop_map(|_| Stmt::Promote);
    // Writes dominate; merges, placement moves, and tier transitions are
    // sprinkled in so the log mixes data records with
    // physical-reorganization records.
    prop_oneof![
        insert_stmt(),
        insert_stmt(),
        insert_stmt(),
        update_stmt(),
        update_stmt(),
        update_stmt(),
        merge,
        mv,
        demote,
        promote
    ]
}

/// Fresh database with an always-synced in-memory WAL attached; returns the
/// second handle onto the log image.
fn wal_db() -> (HybridDatabase, MemBackend) {
    let mem = MemBackend::new();
    let image = mem.share();
    let db = HybridDatabase::new();
    db.set_merge_config(MergeConfig::disabled());
    db.attach_wal(WalWriter::new(Box::new(mem), SyncPolicy::Always));
    db.create_single(schema("t"), StoreKind::Column).unwrap();
    db.bulk_load("t", (0..96).map(|i| row(i, i))).unwrap();
    (db, image)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Crash-point sweep: cut the log at every statement boundary and at
    /// offsets strictly inside the following frame. Recovery must yield the
    /// checkpointed state of the longest committed prefix, report a torn
    /// tail exactly for the mid-frame cuts, and never come up degraded or
    /// with a merge still in flight.
    #[test]
    fn recovery_equals_committed_prefix_at_every_crash_point(
        stmts in prop::collection::vec(stmt_strategy(), 4..20)
    ) {
        let (db, image) = wal_db();
        // checkpoints[i] = (log length, probe) after the i-th committed
        // statement (index 0 = right after create + bulk load).
        let mut checkpoints = vec![(image.snapshot().len(), probe(&db, "t"))];
        for s in &stmts {
            apply_stmt(&db, s);
            checkpoints.push((image.snapshot().len(), probe(&db, "t")));
        }
        let bytes = image.snapshot();
        prop_assert_eq!(checkpoints.last().unwrap().0, bytes.len());

        for (i, (boundary, expected)) in checkpoints.iter().enumerate() {
            let next = checkpoints
                .get(i + 1)
                .map(|(b, _)| *b)
                .unwrap_or(bytes.len());
            // The clean cut, plus cuts one byte in, mid-header, and one
            // byte short of the next boundary (all inside the next frame).
            let mut cuts = vec![(*boundary, false)];
            if next > *boundary {
                for delta in [1, HEADER_LEN / 2, next - boundary - 1] {
                    let cut = boundary + delta;
                    if cut > *boundary && cut < next {
                        cuts.push((cut, true));
                    }
                }
            }
            for (cut, torn) in cuts {
                let (rec, report) = HybridDatabase::recover_bytes(&bytes[..cut]);
                prop_assert_eq!(report.torn_tail.is_some(), torn, "cut at {} of {}", cut, bytes.len());
                prop_assert_eq!(report.recovered_len, *boundary as u64);
                prop_assert!(report.degraded.is_empty(), "unexpected degradation: {:?}", report.degraded);
                prop_assert!(!rec.merge_in_progress("t").unwrap(), "in-flight merge survived recovery");
                prop_assert_eq!(&probe(&rec, "t"), expected, "cut at {} (boundary {})", cut, boundary);
            }
        }
    }
}

/// Exhaustive byte-level sweep on a small deterministic log: every single
/// truncation length from 0 to the full image recovers the longest
/// committed statement prefix.
#[test]
fn recovery_sweeps_every_byte_offset() {
    // Built inline (not via `wal_db`) so the create record and the bulk
    // load get *separate* checkpoints — they are distinct WAL frames, and
    // the byte sweep cuts right between them.
    let mem = MemBackend::new();
    let image = mem.share();
    let db = HybridDatabase::new();
    db.set_merge_config(MergeConfig::disabled());
    db.attach_wal(WalWriter::new(Box::new(mem), SyncPolicy::Always));
    db.create_single(schema("t"), StoreKind::Column).unwrap();
    let mut checkpoints = vec![(image.snapshot().len(), probe(&db, "t"))];
    db.bulk_load("t", (0..96).map(|i| row(i, i))).unwrap();
    checkpoints.push((image.snapshot().len(), probe(&db, "t")));
    for s in [
        Stmt::Insert { id: 200, salt: 3 },
        Stmt::Update { id: 10, salt: 4 },
        Stmt::Merge,
        Stmt::Insert { id: 201, salt: 5 },
    ] {
        apply_stmt(&db, &s);
        checkpoints.push((image.snapshot().len(), probe(&db, "t")));
    }
    let bytes = image.snapshot();
    for cut in 0..=bytes.len() {
        let (rec, report) = HybridDatabase::recover_bytes(&bytes[..cut]);
        let (boundary, expected) = checkpoints
            .iter()
            .rev()
            .find(|(b, _)| *b <= cut)
            .cloned()
            .unwrap_or((0, vec![]));
        assert_eq!(report.recovered_len, boundary as u64, "cut {cut}");
        assert_eq!(report.torn_tail.is_some(), cut != boundary, "cut {cut}");
        assert!(report.degraded.is_empty());
        if boundary == 0 {
            assert!(rec.table_names().is_empty());
        } else {
            assert_eq!(probe(&rec, "t"), expected, "cut {cut}");
        }
    }
}

/// Interior bit-flip: corrupt a payload byte of one table's insert record
/// in the *middle* of the log. Recovery must quarantine that table
/// read-only from the corruption point (serving the committed prefix),
/// leave the other table fully writable, and surface the damage in the
/// report until an operator clears it.
#[test]
fn interior_corruption_quarantines_only_the_hit_table() {
    let mem = MemBackend::new();
    let image = mem.share();
    let db = HybridDatabase::new();
    db.set_merge_config(MergeConfig::disabled());
    db.attach_wal(WalWriter::new(Box::new(mem), SyncPolicy::Always));
    db.create_single(schema("a"), StoreKind::Column).unwrap();
    db.create_single(schema("b"), StoreKind::Row).unwrap();
    db.bulk_load("a", (0..8).map(|i| row(i, i))).unwrap();
    db.bulk_load("b", (0..8).map(|i| row(i, i))).unwrap();
    // One insert per table *before* the corruption victim, so `b` has a
    // committed prefix to serve, then the victim, then more traffic.
    for (t, id) in [("a", 100), ("b", 100), ("b", 101), ("a", 101), ("b", 102)] {
        db.execute(&Query::Insert(InsertQuery {
            table: t.into(),
            rows: vec![row(id, id)],
        }))
        .unwrap();
    }
    let mut bytes = image.snapshot();
    let b_tag = hybrid_store_advisor::engine::durability::table_tag("b");
    // The victim: the fourth b-tagged frame — create, bulk load, and the
    // first insert stay committed; the second insert takes the hit.
    // (Corrupting the create record would leave the tag unresolved.)
    let victim = scan_frames(&bytes)
        .frames
        .iter()
        .filter(|f| f.table_tag == b_tag)
        .nth(3)
        .expect("log should hold several b-tagged frames")
        .offset as usize;
    bytes[victim + HEADER_LEN + 2] ^= 0x01;

    let (rec, report) = HybridDatabase::recover_bytes(&bytes);
    assert!(!report.is_clean());
    assert_eq!(report.degraded.len(), 1, "{:?}", report.degraded);
    assert_eq!(report.degraded[0].table, "b");
    assert!(report.records_skipped >= 1);
    assert!(
        report.torn_tail.is_none(),
        "interior corruption is not a torn tail"
    );

    // `b` serves its committed prefix read-only: bulk load + insert 100
    // replayed, everything at and after the flipped record quarantined.
    assert!(rec.is_degraded("b"));
    let b_rows = probe(&rec, "b");
    assert_eq!(b_rows.len(), 9);
    let write = rec.execute(&Query::Insert(InsertQuery {
        table: "b".into(),
        rows: vec![row(500, 0)],
    }));
    assert!(
        matches!(write, Err(Error::Degraded(_))),
        "write to quarantined table must fail: {write:?}"
    );

    // `a` is untouched: both inserts present, still writable.
    assert!(!rec.is_degraded("a"));
    assert_eq!(probe(&rec, "a").len(), 10);
    rec.execute(&Query::Insert(InsertQuery {
        table: "a".into(),
        rows: vec![row(500, 0)],
    }))
    .unwrap();

    // Operator override: acknowledging the damage restores writability.
    assert!(rec.clear_degraded("b"));
    rec.execute(&Query::Insert(InsertQuery {
        table: "b".into(),
        rows: vec![row(500, 0)],
    }))
    .unwrap();
}

/// Transient `EINTR`-style append faults are retried by the writer and the
/// log stays byte-identical to a fault-free run: recovery reproduces the
/// live database exactly and the retries are visible in the stats.
#[test]
fn transient_write_faults_are_retried_without_losing_records() {
    let mem = MemBackend::new();
    let image = mem.share();
    let faulty = FaultFile::new(
        Box::new(mem),
        FaultPlan {
            transient_failures: 3,
            short_write_cap: Some(11),
            ..FaultPlan::default()
        },
    );
    let db = HybridDatabase::new();
    db.set_merge_config(MergeConfig::disabled());
    db.attach_wal(WalWriter::with_retry(
        Box::new(faulty),
        SyncPolicy::Always,
        RetryPolicy::default(),
    ));
    db.create_single(schema("t"), StoreKind::Column).unwrap();
    db.bulk_load("t", (0..32).map(|i| row(i, i))).unwrap();
    for id in 100..110 {
        apply_stmt(&db, &Stmt::Insert { id, salt: id });
    }
    let stats = db.wal_stats().unwrap();
    assert!(stats.retries >= 3, "retries: {}", stats.retries);
    assert!(stats.records >= 12);

    let bytes = image.snapshot();
    let (rec, report) = HybridDatabase::recover_bytes(&bytes);
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(probe(&rec, "t"), probe(&db, "t"));
}

/// Simulated media death mid-record: the failed statement surfaces an I/O
/// error to the caller (it never committed) and recovery truncates the torn
/// tail back to the last durable statement.
#[test]
fn media_death_mid_record_loses_only_the_uncommitted_statement() {
    // First, measure the clean log so the crash can be planted mid-frame.
    let (oracle, oracle_image) = wal_db();
    let boundary = oracle_image.snapshot().len() as u64;
    apply_stmt(&oracle, &Stmt::Insert { id: 200, salt: 1 });

    let mem = MemBackend::new();
    let image = mem.share();
    let faulty = FaultFile::new(
        Box::new(mem),
        FaultPlan {
            crash_after_bytes: Some(boundary + HEADER_LEN as u64 + 3),
            ..FaultPlan::default()
        },
    );
    let db = HybridDatabase::new();
    db.set_merge_config(MergeConfig::disabled());
    db.attach_wal(WalWriter::new(Box::new(faulty), SyncPolicy::Always));
    db.create_single(schema("t"), StoreKind::Column).unwrap();
    db.bulk_load("t", (0..96).map(|i| row(i, i))).unwrap();
    let expected = probe(&db, "t");

    let dead = db.execute(&Query::Insert(InsertQuery {
        table: "t".into(),
        rows: vec![row(200, 1)],
    }));
    assert!(
        matches!(dead, Err(Error::Io(_))),
        "append past media death must fail the statement: {dead:?}"
    );

    let bytes = image.snapshot();
    let (rec, report) = HybridDatabase::recover_bytes(&bytes);
    assert!(report.torn_tail.is_some());
    assert_eq!(report.recovered_len, boundary);
    assert_eq!(probe(&rec, "t"), expected);
}

/// File-backed round trip through [`HybridDatabase::open`]: recovery after
/// a torn tail truncates the file itself and the reopened database resumes
/// appending where the committed prefix ended.
#[test]
fn file_recovery_truncates_torn_tail_and_resumes_appends() {
    let dir = std::env::temp_dir().join(format!("hsd_wal_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.wal");
    let _ = std::fs::remove_file(&path);

    let (db, image) = wal_db();
    let expected = {
        let db = db;
        apply_stmt(&db, &Stmt::Insert { id: 300, salt: 9 });
        probe(&db, "t")
    };
    let mut bytes = image.snapshot();
    let committed = bytes.len();
    bytes.extend_from_slice(&[0xAB; 9]); // torn garbage past the last frame
    std::fs::write(&path, &bytes).unwrap();

    let (rec, report) = HybridDatabase::recover(&path).unwrap();
    assert!(report.torn_tail.is_some());
    assert_eq!(report.recovered_len, committed as u64);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), committed as u64);
    assert_eq!(probe(&rec, "t"), expected);

    // The reopened database keeps logging: one more statement, reopen
    // again, and the new record is there.
    apply_stmt(&rec, &Stmt::Insert { id: 301, salt: 2 });
    let after = probe(&rec, "t");
    drop(rec);
    let (rec2, report2) = HybridDatabase::recover(&path).unwrap();
    assert!(report2.is_clean(), "{report2:?}");
    assert_eq!(probe(&rec2, "t"), after);
    let _ = std::fs::remove_file(&path);
}

/// Horizontal split of the crash-test table, cold partition on the given
/// tier.
fn split_at_48(cold_tier: Tier) -> TablePlacement {
    TablePlacement::Partitioned(PartitionSpec {
        horizontal: Some(HorizontalSpec {
            split_column: 0,
            split_value: Value::BigInt(48),
        }),
        vertical: None,
        cold_tier,
    })
}

fn cold_tier_of(db: &HybridDatabase, table: &str) -> Tier {
    match &db.catalog().entry_by_name(table).unwrap().placement {
        TablePlacement::Partitioned(spec) => spec.cold_tier,
        other => panic!("expected partitioned placement, got {other:?}"),
    }
}

/// Byte-level sweep across a demotion record: every cut strictly inside the
/// `Demote` frame recovers the pre-demotion (memory-resident) placement and
/// the full table contents; the complete image replays the demotion and
/// comes back with the cold partition disk-resident.
#[test]
fn cut_inside_demotion_record_recovers_pre_demotion_state() {
    let (db, image) = wal_db();
    mover::move_table(&db, "t", &split_at_48(Tier::Memory)).unwrap();
    let expected = probe(&db, "t");
    let boundary = image.snapshot().len();
    assert!(mover::demote_cold(&db, "t").unwrap() > 0);
    let full = image.snapshot();
    assert!(full.len() > boundary, "demotion must append a WAL record");

    for cut in boundary..full.len() {
        let (rec, report) = HybridDatabase::recover_bytes(&full[..cut]);
        assert_eq!(report.recovered_len, boundary as u64, "cut {cut}");
        assert_eq!(report.torn_tail.is_some(), cut != boundary, "cut {cut}");
        assert!(
            report.degraded.is_empty(),
            "cut {cut}: {:?}",
            report.degraded
        );
        assert_eq!(cold_tier_of(&rec, "t"), Tier::Memory, "cut {cut}");
        assert_eq!(probe(&rec, "t"), expected, "cut {cut}");
    }

    let (rec, report) = HybridDatabase::recover_bytes(&full);
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(cold_tier_of(&rec, "t"), Tier::Disk);
    assert_eq!(probe(&rec, "t"), expected);
}

/// Damaged checkpoint images: a torn or bit-flipped newest checkpoint must
/// fall back to the previous image (paying a longer WAL replay), and with
/// every image damaged recovery degrades to full-log replay — in all cases
/// reproducing the live database exactly. The newer image holds a
/// disk-tier placement, so restore also exercises segment re-publication.
#[test]
fn damaged_checkpoints_fall_back_to_previous_image_then_full_replay() {
    let dir = std::env::temp_dir().join(format!("hsd_cp_damage_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || DurabilityConfig {
        sync: SyncPolicy::Always,
        retry: RetryPolicy::default(),
    };
    let (db, _) = HybridDatabase::open_dir(&dir, cfg()).unwrap();
    db.set_merge_config(MergeConfig::disabled());
    db.create_single(schema("t"), StoreKind::Column).unwrap();
    db.bulk_load("t", (0..96).map(|i| row(i, i))).unwrap();
    for id in 100..120 {
        apply_stmt(&db, &Stmt::Insert { id, salt: id });
    }
    let cp1 = db.checkpoint().unwrap();
    // Demote the cold partition between the two checkpoints so the newer
    // image captures a disk-tier placement.
    mover::move_table(&db, "t", &split_at_48(Tier::Disk)).unwrap();
    for id in 120..140 {
        apply_stmt(&db, &Stmt::Insert { id, salt: id });
    }
    let cp2 = db.checkpoint().unwrap();
    for id in 140..150 {
        apply_stmt(&db, &Stmt::Insert { id, salt: id });
    }
    db.sync_wal().unwrap();
    let expected = probe(&db, "t");
    drop(db);

    let newest = dir
        .join("checkpoints")
        .join(format!("checkpoint_{:06}", cp2.seq));
    let older = dir
        .join("checkpoints")
        .join(format!("checkpoint_{:06}", cp1.seq));
    let pristine_newest = std::fs::read(&newest).unwrap();
    let pristine_older = std::fs::read(&older).unwrap();

    // Clean baseline: the newest image restores and only the suffix
    // written after it replays.
    let clean_replayed = {
        let (rec, report) = HybridDatabase::open_dir(&dir, cfg()).unwrap();
        assert_eq!(report.checkpoint_seq, Some(cp2.seq));
        assert_eq!(report.checkpoints_skipped, 0);
        assert_eq!(cold_tier_of(&rec, "t"), Tier::Disk);
        assert_eq!(probe(&rec, "t"), expected);
        report.records_replayed
    };

    // Torn (several truncation lengths) and bit-flipped newest image:
    // recovery skips it, restores the previous checkpoint, and pays a
    // longer replay — yet lands on the same state.
    let mut flipped = pristine_newest.clone();
    flipped[pristine_newest.len() / 3] ^= 0x40;
    let damaged = [
        pristine_newest[..0].to_vec(),
        pristine_newest[..7].to_vec(),
        pristine_newest[..pristine_newest.len() / 2].to_vec(),
        pristine_newest[..pristine_newest.len() - 1].to_vec(),
        flipped,
    ];
    for bytes in &damaged {
        std::fs::write(&newest, bytes).unwrap();
        let (rec, report) = HybridDatabase::open_dir(&dir, cfg()).unwrap();
        assert_eq!(report.checkpoint_seq, Some(cp1.seq), "len {}", bytes.len());
        assert_eq!(report.checkpoints_skipped, 1, "len {}", bytes.len());
        assert!(
            report.records_replayed > clean_replayed,
            "fallback must replay a longer suffix ({} vs {})",
            report.records_replayed,
            clean_replayed
        );
        assert_eq!(cold_tier_of(&rec, "t"), Tier::Disk);
        assert_eq!(probe(&rec, "t"), expected, "len {}", bytes.len());
    }

    // Both images damaged: full-log replay from byte zero.
    std::fs::write(&newest, &pristine_newest[..pristine_newest.len() / 2]).unwrap();
    std::fs::write(&older, &pristine_older[..pristine_older.len() / 2]).unwrap();
    let (rec, report) = HybridDatabase::open_dir(&dir, cfg()).unwrap();
    assert_eq!(report.checkpoint_seq, None);
    assert_eq!(report.checkpoints_skipped, 2);
    assert_eq!(report.checkpoint_wal_len, 0);
    assert!(report.records_replayed > clean_replayed);
    assert_eq!(cold_tier_of(&rec, "t"), Tier::Disk);
    assert_eq!(probe(&rec, "t"), expected);
    drop(rec);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Statements that ranged over unbounded predicates replay too — guard
/// against the codec quietly narrowing half-open ranges.
#[test]
fn half_open_range_updates_replay_exactly() {
    let (db, image) = wal_db();
    db.execute(&Query::Update(UpdateQuery {
        table: "t".into(),
        sets: vec![(1, Value::Double(-1.0))],
        filter: vec![ColRange::range(
            0,
            Bound::Unbounded,
            Bound::Excluded(Value::BigInt(10)),
        )],
    }))
    .unwrap();
    let (rec, report) = HybridDatabase::recover_bytes(&image.snapshot());
    assert!(report.is_clean());
    assert_eq!(probe(&rec, "t"), probe(&db, "t"));
}
