//! Produce the reference `cost_model.json` calibration artifact.
//!
//! The committed artifact pins the calibrated constants of one known
//! machine so later PRs can diff the cost model's shape after engine
//! changes (the ROADMAP's drift-tracking item); it also feeds `bench_merge`
//! a ready model so CI's smoke run skips recalibration.
//!
//! Run with `cargo run --release -p hsd-bench --bin calibrate_model`
//! (`-- --full` for the full-size calibration; default is the quick
//! configuration so regeneration stays cheap).

use hsd_core::{calibrate, CalibrationConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        CalibrationConfig::default()
    } else {
        CalibrationConfig::quick()
    };
    eprintln!(
        "[calibrate_model] calibrating ({} rows base, {} repeats) ...",
        cfg.base_rows, cfg.repeats
    );
    let model = calibrate(&cfg).expect("calibration");
    std::fs::write("cost_model.json", model.to_json() + "\n").expect("write cost_model.json");
    eprintln!("[calibrate_model] wrote cost_model.json");
}
