//! Statistics recorder: accumulates the online mode's extended workload
//! statistics as queries execute.

use std::collections::BTreeMap;

use hsd_catalog::{ExtendedStats, TablePlacement, Tier};
use hsd_query::{Query, SelectQuery, UpdateQuery};
use hsd_storage::StoreKind;
use hsd_types::TableSchema;

use crate::database::HybridDatabase;

/// Operator class a [`TimingSample`] belongs to. Mirrors the estimator's
/// cost formulas, so each class maps onto one family of model coefficients
/// the online calibrator can re-fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// Unfiltered, join-free aggregate: a full scan of the aggregated
    /// columns (the `f_rows`/`f_tail` families).
    Scan,
    /// Filtered or joined read: scan plus locate/probe terms.
    FilteredScan,
    /// Primary-key point select (the `sel_point_ms` family).
    Point,
    /// Row insert (the `ins_row` family).
    Insert,
    /// Predicate update (locate + `upd_row_ms` families).
    Update,
}

/// One predicted-vs-measured observation: a query's wall-clock execution
/// time tagged with everything the online calibrator needs to reproduce the
/// model's prediction for it (table, placement, operator class, live row
/// count and dictionary tail at execution time).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSample {
    /// Queried table.
    pub table: String,
    /// Store the query executed against (`Column` for partitioned layouts,
    /// whose scans are served by the column fragments).
    pub store: StoreKind,
    /// Whether the table was under a partitioned placement.
    pub partitioned: bool,
    /// Whether the placement's cold partition is disk-resident (the
    /// `TierModel` surcharge applies).
    pub disk_cold: bool,
    /// Operator class (selects the coefficient family).
    pub op: OpClass,
    /// Live row count at execution time.
    pub rows: usize,
    /// Live dictionary-tail size at execution time.
    pub tail: usize,
    /// The cost model's prediction for this query under the layout it
    /// executed on, in milliseconds. Computed by the caller (the recorder
    /// has no model); `measured / predicted` is the residual the online
    /// calibrator re-fits from.
    pub predicted_ms: f64,
    /// Measured wall-clock execution time in milliseconds.
    pub measured_ms: f64,
}

/// One merge slice's measured cost: rows remapped and wall-clock spent, the
/// observation the `merge_ms` coefficient family is re-fit from (and the
/// calibration groundwork a wall-clock merge pacer needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSliceSample {
    /// Merged table.
    pub table: String,
    /// Rows remapped by the slice.
    pub rows_remapped: usize,
    /// Wall-clock nanoseconds the slice took.
    pub elapsed_ns: u64,
}

/// Bound on buffered timing/merge samples per observation interval; beyond
/// it new samples are dropped (the calibrator drains far more often than
/// this fills, and a decayed fit prefers fresh samples anyway).
const TIMING_CAP: usize = 4096;

/// Records per-table / per-attribute activity ("Record extended statistics"
/// in Figure 5 of the paper).
#[derive(Debug, Default)]
pub struct StatisticsRecorder {
    stats: ExtendedStats,
    /// Last sampled `(merge_epoch, delta_tail)` per table — the cursor the
    /// observed-tail-growth counter diffs against. A moved epoch means a
    /// merge folded the old tail, so growth restarts from zero instead of
    /// producing a bogus negative delta.
    tail_cursor: BTreeMap<String, (u64, usize)>,
    /// Buffered observed-timing samples (drained by the online calibrator).
    timing: Vec<TimingSample>,
    /// Buffered per-merge-slice timings (drained by the online calibrator).
    merge_slices: Vec<MergeSliceSample>,
}

impl StatisticsRecorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &ExtendedStats {
        &self.stats
    }

    /// Consume the recorder, yielding its statistics.
    pub fn into_stats(self) -> ExtendedStats {
        self.stats
    }

    /// Reset all counters (a new observation interval).
    pub fn reset(&mut self) {
        self.stats = ExtendedStats::new();
        self.tail_cursor.clear();
        self.timing.clear();
        self.merge_slices.clear();
    }

    /// Record one query *with* its measured wall-clock execution time: the
    /// usual extended statistics plus an observed-timing sample tagged by
    /// table, placement, and operator class. The sample is what the online
    /// calibrator pairs against the model's prediction — the same
    /// generalization of the PR 4 observed-tail-rate pattern, applied to
    /// latency instead of dictionary growth.
    pub fn record_timed(
        &mut self,
        db: &HybridDatabase,
        query: &Query,
        predicted_ms: f64,
        measured_ms: f64,
    ) {
        self.record(db, query);
        if self.timing.len() >= TIMING_CAP {
            return;
        }
        let table = query.table();
        let (store, partitioned, disk_cold) = match db.catalog().entry_by_name(table) {
            Ok(e) => match &e.placement {
                TablePlacement::Single(s) => (*s, false, false),
                // Partitioned scans are served by the column fragments; the
                // cold tier decides whether the TierModel surcharge applies.
                TablePlacement::Partitioned(spec) => {
                    (StoreKind::Column, true, spec.cold_tier == Tier::Disk)
                }
            },
            Err(_) => return,
        };
        let op = classify(db, query);
        self.timing.push(TimingSample {
            table: table.to_string(),
            store,
            partitioned,
            disk_cold,
            op,
            rows: db.row_count(table).unwrap_or(0),
            tail: db.delta_tail(table).unwrap_or(0),
            predicted_ms,
            measured_ms,
        });
    }

    /// Record one merge slice's measured cost (rows remapped over wall-clock
    /// nanoseconds) — the observation channel for the `merge_ms` family.
    pub fn observe_merge_slice(&mut self, table: &str, rows_remapped: usize, elapsed_ns: u64) {
        if rows_remapped == 0 || self.merge_slices.len() >= TIMING_CAP {
            return;
        }
        self.merge_slices.push(MergeSliceSample {
            table: table.to_string(),
            rows_remapped,
            elapsed_ns,
        });
    }

    /// Drain the buffered observed-timing samples.
    pub fn take_timing_samples(&mut self) -> Vec<TimingSample> {
        std::mem::take(&mut self.timing)
    }

    /// Drain the buffered per-merge-slice timings.
    pub fn take_merge_slice_samples(&mut self) -> Vec<MergeSliceSample> {
        std::mem::take(&mut self.merge_slices)
    }

    /// Record one query. The database is consulted for schema arity and for
    /// sampling the live dictionary-tail size (observed tail growth).
    pub fn record(&mut self, db: &HybridDatabase, query: &Query) {
        self.stats.total_statements += 1;
        self.observe_tail(db, query);
        match query {
            Query::Insert(q) => {
                let arity = arity_of(db, &q.table);
                let t = self.stats.table_mut(&q.table, arity);
                t.inserts += 1;
            }
            Query::Update(q) => self.record_update(db, q),
            Query::Select(q) => self.record_select(db, q),
            Query::Aggregate(q) => {
                let arity = arity_of(db, &q.table);
                let t = self.stats.table_mut(&q.table, arity);
                t.aggregations += 1;
                for a in &q.aggregates {
                    if a.column < t.columns.len() {
                        t.columns[a.column].aggregates += 1;
                    }
                }
                if let Some(g) = q.group_by {
                    if g < t.columns.len() {
                        t.columns[g].group_bys += 1;
                    }
                }
                for r in &q.filter {
                    if r.column < t.columns.len() {
                        t.columns[r.column].select_preds += 1;
                    }
                }
                if let Some(join) = &q.join {
                    *t.join_partners.entry(join.dim_table.clone()).or_insert(0) += 1;
                    let dim_arity = arity_of(db, &join.dim_table);
                    let d = self.stats.table_mut(&join.dim_table, dim_arity);
                    *d.join_partners.entry(q.table.clone()).or_insert(0) += 1;
                    if let Some(g) = join.group_by_dim {
                        if g < d.columns.len() {
                            d.columns[g].group_bys += 1;
                        }
                    }
                }
            }
        }
    }

    /// Sample the query's table for live tail growth: positive deltas of
    /// `delta_tail` since the last sample accumulate into
    /// `observed_tail_growth`, and write statements against a *fully
    /// columnar* table count into `observed_write_statements` — the two
    /// sides of the observed tail rate that tightens the advisor's static
    /// one-entry-per-assignment upper bound.
    ///
    /// Sampling is cursor-based (per-statement diffs), seeded with the
    /// current tail so pre-existing delta (from before this recorder — or
    /// this observation interval — started) is never mis-counted as
    /// observed growth. Growth caused by a write is attributed when the
    /// *next* statement on the table is recorded — exact over any window
    /// longer than one statement. A selective per-column merge both bumps
    /// the epoch and leaves other columns' tails in place; the reset then
    /// re-counts the survivors, a slight overcount in the conservative
    /// (upper-bound) direction.
    ///
    /// Only `Single(Column)` placements accumulate write statements: on a
    /// partitioned layout most writes land in the hot row partition and
    /// grow no tail, so counting them would report a near-zero rate that
    /// the advisor would then wrongly apply when pricing a full
    /// column-store candidate. Partitioned tables simply fall back to the
    /// static upper bound (`observed_tail_rate` stays `None`).
    fn observe_tail(&mut self, db: &HybridDatabase, query: &Query) {
        let table = query.table();
        let Ok(tail) = db.delta_tail(table) else {
            return;
        };
        let epoch = db.merge_epoch(table).unwrap_or(0);
        let grown = match self.tail_cursor.insert(table.to_string(), (epoch, tail)) {
            // First sample: establish the baseline; whatever tail already
            // exists predates observation and must not count as growth.
            None => 0,
            Some((prev_epoch, prev_tail)) => {
                let base = if prev_epoch == epoch { prev_tail } else { 0 };
                tail.saturating_sub(base) as u64
            }
        };
        let columnar = db
            .catalog()
            .entry_by_name(table)
            .map(|e| matches!(e.placement, TablePlacement::Single(StoreKind::Column)))
            .unwrap_or(false);
        let is_write = matches!(query, Query::Insert(_) | Query::Update(_));
        if grown == 0 && !(columnar && is_write) {
            return;
        }
        let arity = arity_of(db, table);
        let t = self.stats.table_mut(table, arity);
        t.observed_tail_growth += grown;
        if columnar && is_write {
            t.observed_write_statements += 1;
        }
    }

    fn record_update(&mut self, db: &HybridDatabase, q: &UpdateQuery) {
        let schema = schema_of(db, &q.table);
        let arity = schema.as_ref().map_or(q.sets.len() + 1, |s| s.arity());
        let non_key = schema
            .as_ref()
            .map_or(arity, |s| s.arity() - s.primary_key.len());
        let t = self.stats.table_mut(&q.table, arity);
        t.updates += 1;
        // "updates that are addressing many attributes": a strict majority
        // of the non-key attributes assigned.
        if q.sets.len() * 2 > non_key.max(1) {
            t.whole_tuple_updates += 1;
        }
        for (col, _) in &q.sets {
            if *col < t.columns.len() {
                t.columns[*col].update_sets += 1;
            }
        }
        for r in &q.filter {
            if r.column < t.columns.len() {
                t.columns[r.column].update_preds += 1;
            }
            // Envelope of updated key ranges, for the hot-region heuristic.
            let lo = match r.lo_ref() {
                std::ops::Bound::Included(v) | std::ops::Bound::Excluded(v) => Some(v),
                std::ops::Bound::Unbounded => None,
            };
            let hi = match r.hi_ref() {
                std::ops::Bound::Included(v) | std::ops::Bound::Excluded(v) => Some(v),
                std::ops::Bound::Unbounded => None,
            };
            if let (Some(lo), Some(hi)) = (lo, hi) {
                t.update_envelopes
                    .entry(r.column)
                    .or_default()
                    .observe(lo, hi);
            }
        }
    }

    fn record_select(&mut self, db: &HybridDatabase, q: &SelectQuery) {
        let arity = arity_of(db, &q.table);
        let t = self.stats.table_mut(&q.table, arity);
        t.selects += 1;
        for r in &q.filter {
            if r.column < t.columns.len() {
                t.columns[r.column].select_preds += 1;
            }
        }
        match &q.columns {
            Some(cols) => {
                for &c in cols {
                    if c < t.columns.len() {
                        t.columns[c].select_projs += 1;
                    }
                }
            }
            None => {
                // SELECT *: every column is projected.
                for c in &mut t.columns {
                    c.select_projs += 1;
                }
            }
        }
    }
}

/// Map a query onto the coefficient family its measured time calibrates.
/// Mirrors the estimator's case analysis: an unfiltered, join-free
/// aggregate is a pure scan; a select whose filter is exactly an equality
/// on every primary-key column is a point lookup; everything else that
/// reads is a filtered scan.
fn classify(db: &HybridDatabase, query: &Query) -> OpClass {
    match query {
        Query::Insert(_) => OpClass::Insert,
        Query::Update(_) => OpClass::Update,
        Query::Aggregate(q) => {
            if q.filter.is_empty() && q.join.is_none() {
                OpClass::Scan
            } else {
                OpClass::FilteredScan
            }
        }
        Query::Select(q) => {
            let pk: Vec<usize> = schema_of(db, &q.table)
                .map(|s| s.primary_key.clone())
                .unwrap_or_default();
            let is_point = !pk.is_empty()
                && q.filter.len() == pk.len()
                && pk.iter().all(|c| {
                    q.filter
                        .iter()
                        .any(|r| r.column == *c && r.as_eq().is_some())
                });
            if is_point {
                OpClass::Point
            } else {
                OpClass::FilteredScan
            }
        }
    }
}

fn arity_of(db: &HybridDatabase, table: &str) -> usize {
    schema_of(db, table).map_or(0, |s| s.arity())
}

fn schema_of(db: &HybridDatabase, table: &str) -> Option<std::sync::Arc<TableSchema>> {
    db.catalog()
        .entry_by_name(table)
        .ok()
        .map(|e| e.schema.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_query::{AggFunc, Aggregate, AggregateQuery, InsertQuery, JoinSpec};
    use hsd_storage::{ColRange, StoreKind};
    use hsd_types::{ColumnDef, ColumnType, Value};

    fn db() -> HybridDatabase {
        let db = HybridDatabase::new();
        db.create_single(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::BigInt),
                    ColumnDef::new("kf", ColumnType::Double),
                    ColumnDef::new("st", ColumnType::Integer),
                ],
                vec![0],
            )
            .unwrap(),
            StoreKind::Row,
        )
        .unwrap();
        db.create_single(
            TableSchema::new(
                "dim",
                vec![
                    ColumnDef::new("dk", ColumnType::BigInt),
                    ColumnDef::new("region", ColumnType::Integer),
                ],
                vec![0],
            )
            .unwrap(),
            StoreKind::Row,
        )
        .unwrap();
        db
    }

    #[test]
    fn records_inserts_updates_selects() {
        let db = db();
        let mut rec = StatisticsRecorder::new();
        rec.record(
            &db,
            &Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![],
            }),
        );
        rec.record(
            &db,
            &Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(2, Value::Int(1))],
                filter: vec![ColRange::eq(0, Value::BigInt(7))],
            }),
        );
        rec.record(
            &db,
            &Query::Select(SelectQuery {
                table: "t".into(),
                columns: Some(vec![2]),
                filter: vec![ColRange::eq(0, Value::BigInt(7))],
            }),
        );
        let t = rec.stats().table("t").unwrap();
        assert_eq!(t.inserts, 1);
        assert_eq!(t.updates, 1);
        assert_eq!(t.selects, 1);
        assert_eq!(t.columns[2].update_sets, 1);
        assert_eq!(t.columns[2].select_projs, 1);
        assert_eq!(t.columns[0].update_preds, 1);
        assert_eq!(t.columns[0].select_preds, 1);
        let env = &t.update_envelopes[&0];
        assert_eq!(env.lo, Some(Value::BigInt(7)));
        assert_eq!(env.hi, Some(Value::BigInt(7)));
        assert_eq!(rec.stats().total_statements, 3);
    }

    #[test]
    fn whole_tuple_update_detection() {
        let db = db();
        let mut rec = StatisticsRecorder::new();
        // schema has 2 non-key columns; assigning both is a whole-tuple update
        rec.record(
            &db,
            &Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(0.0)), (2, Value::Int(1))],
                filter: vec![ColRange::eq(0, Value::BigInt(3))],
            }),
        );
        // single-column update is not
        rec.record(
            &db,
            &Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(2, Value::Int(1))],
                filter: vec![ColRange::eq(0, Value::BigInt(3))],
            }),
        );
        let t = rec.stats().table("t").unwrap();
        assert_eq!(t.updates, 2);
        assert_eq!(t.whole_tuple_updates, 1);
    }

    #[test]
    fn records_aggregations_and_joins() {
        let db = db();
        let mut rec = StatisticsRecorder::new();
        rec.record(
            &db,
            &Query::Aggregate(AggregateQuery {
                table: "t".into(),
                aggregates: vec![Aggregate {
                    func: AggFunc::Sum,
                    column: 1,
                }],
                group_by: Some(2),
                filter: vec![],
                join: Some(JoinSpec {
                    dim_table: "dim".into(),
                    fact_fk: 2,
                    dim_pk: 0,
                    group_by_dim: Some(1),
                }),
            }),
        );
        let t = rec.stats().table("t").unwrap();
        assert_eq!(t.aggregations, 1);
        assert_eq!(t.columns[1].aggregates, 1);
        assert_eq!(t.columns[2].group_bys, 1);
        assert_eq!(t.join_partners["dim"], 1);
        let d = rec.stats().table("dim").unwrap();
        assert_eq!(d.join_partners["t"], 1);
        assert_eq!(d.columns[1].group_bys, 1);
    }

    #[test]
    fn observed_tail_growth_tracks_live_dictionaries_not_the_upper_bound() {
        let row_db = db();
        let db = HybridDatabase::new();
        db.create_single(
            TableSchema::new(
                "c",
                vec![
                    ColumnDef::new("id", ColumnType::BigInt),
                    ColumnDef::new("kf", ColumnType::Double),
                ],
                vec![0],
            )
            .unwrap(),
            StoreKind::Column,
        )
        .unwrap();
        db.bulk_load(
            "c",
            (0..50).map(|i| vec![Value::BigInt(i), Value::Double(0.0)]),
        )
        .unwrap();
        db.set_merge_config(crate::maintenance::MergeConfig::disabled());
        // Pre-existing tail from before recording starts: the first sample
        // must treat it as baseline, not observed growth.
        db.execute(&Query::Update(UpdateQuery {
            table: "c".into(),
            sets: vec![(1, Value::Double(555.0))],
            filter: vec![ColRange::eq(0, Value::BigInt(40))],
        }))
        .unwrap();
        let mut rec = StatisticsRecorder::new();
        // Skewed column workload: 20 updates alternating between only TWO
        // fresh values — the dictionary interns two entries, while the
        // static upper bound would charge one tail entry per assignment.
        for i in 0..20 {
            let q = Query::Update(UpdateQuery {
                table: "c".into(),
                sets: vec![(1, Value::Double(777.0 + (i % 2) as f64))],
                filter: vec![ColRange::eq(0, Value::BigInt(i))],
            });
            db.execute(&q).unwrap();
            rec.record(&db, &q);
        }
        let t = rec.stats().table("c").unwrap();
        // The pre-existing tail entry and the first statement's intern are
        // baseline (seeded by the first sample); only the second distinct
        // value registers as observed growth — two orders of magnitude
        // below the 20-assignment upper bound.
        assert_eq!(t.observed_tail_growth, 1);
        assert_eq!(t.observed_write_statements, 20);
        assert!(t.observed_tail_rate().unwrap() < 0.1);
        // A merge folds the tail (epoch handoff); the cursor resets instead
        // of producing a negative delta, and fresh growth counts again.
        crate::mover::merge_delta(&db, "c").unwrap();
        for i in 0..3 {
            let q = Query::Update(UpdateQuery {
                table: "c".into(),
                sets: vec![(1, Value::Double(1000.0 + i as f64))],
                filter: vec![ColRange::eq(0, Value::BigInt(i))],
            });
            db.execute(&q).unwrap();
            rec.record(&db, &q);
        }
        let t = rec.stats().table("c").unwrap();
        assert_eq!(t.observed_tail_growth, 4, "1 before the merge + 3 after");
        assert_eq!(t.observed_write_statements, 23);
        // Row-store tables have no delta: nothing is observed.
        let mut rec2 = StatisticsRecorder::new();
        let q = Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(1, Value::Double(1.0))],
            filter: vec![ColRange::eq(0, Value::BigInt(1))],
        });
        rec2.record(&row_db, &q);
        let t = rec2.stats().table("t").unwrap();
        assert_eq!(t.observed_tail_growth, 0);
        assert_eq!(t.observed_write_statements, 0);
        assert!(t.observed_tail_rate().is_none());
        // Partitioned placements don't accumulate write statements either:
        // most writes land in the hot row partition and grow no tail, so a
        // measured rate there would wrongly price a full-column candidate.
        crate::mover::move_table(
            &db,
            "c",
            &hsd_catalog::TablePlacement::Partitioned(hsd_catalog::PartitionSpec {
                horizontal: Some(hsd_catalog::HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(40),
                }),
                vertical: None,
                ..Default::default()
            }),
        )
        .unwrap();
        let mut rec3 = StatisticsRecorder::new();
        let q = Query::Insert(hsd_query::InsertQuery {
            table: "c".into(),
            rows: vec![vec![Value::BigInt(100), Value::Double(1.0)]],
        });
        db.execute(&q).unwrap();
        rec3.record(&db, &q);
        let t = rec3.stats().table("c").unwrap();
        assert_eq!(
            t.observed_write_statements, 0,
            "hot-partition writes must not dilute the observed rate"
        );
        assert!(t.observed_tail_rate().is_none());
    }

    #[test]
    fn reset_clears() {
        let db = db();
        let mut rec = StatisticsRecorder::new();
        rec.record(
            &db,
            &Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![],
            }),
        );
        rec.reset();
        assert_eq!(rec.stats().total_statements, 0);
        assert!(rec.stats().table("t").is_none());
    }
}
