//! Deterministic synthetic tables and mixed workloads.
//!
//! The paper's evaluation tables are "ID and several keyfigures, filter
//! attributes, and group-by attributes" (Section 5.2); [`TableSpec`]
//! reproduces that layout and generates rows *functionally* — `row(i)` is a
//! pure function of `(seed, i)` — so multi-million-row tables stream into
//! either store without a materialized intermediate.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use hsd_storage::ColRange;
use hsd_types::{ColumnDef, ColumnIdx, ColumnType, Result, TableSchema, Value};

use crate::ast::{
    AggFunc, Aggregate, AggregateQuery, InsertQuery, JoinSpec, Query, SelectQuery, UpdateQuery,
};
use crate::workload::Workload;

/// SplitMix64 — the deterministic value function behind row generation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Layout of a synthetic table: `id` (BigInt primary key), then foreign-key,
/// keyfigure, group-by, filter, and status attributes, in that order.
///
/// * keyfigures (`Double`) are the aggregation targets;
/// * group-by attributes (`Integer`) have low cardinality;
/// * filter attributes (`Integer`) have mid cardinality;
/// * status attributes (`Integer`) are the "often modified" OLTP columns of
///   the paper's vertical-partitioning scenarios.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Initial row count.
    pub rows: usize,
    /// Number of foreign-key columns (values in `[0, fk_cardinality)`).
    pub fk_attrs: usize,
    /// Cardinality of foreign-key columns (= dimension table size).
    pub fk_cardinality: u32,
    /// Number of keyfigure (Double) columns.
    pub keyfigures: usize,
    /// Number of group-by (Integer) columns.
    pub group_attrs: usize,
    /// Number of filter (Integer) columns.
    pub filter_attrs: usize,
    /// Number of status (Integer) columns.
    pub status_attrs: usize,
    /// Cardinality of group-by columns.
    pub group_cardinality: u32,
    /// Cardinality of status columns.
    pub status_cardinality: u32,
    /// Number of distinct keyfigure values (controls the compression rate
    /// of the aggregated attribute — the calibration sweep for
    /// `f_compression` varies exactly this).
    pub kf_distinct: u32,
    /// Seed for the deterministic value function.
    pub seed: u64,
}

impl TableSpec {
    /// The paper's 30-attribute evaluation table: ID plus 10 keyfigures,
    /// 8 group-by, 8 filter, and 3 status attributes. The keyfigure
    /// dictionary scales with the row count, keeping the compression rate
    /// of the aggregated attributes at ≈ 0.95 independent of table size.
    pub fn paper_wide(name: impl Into<String>, rows: usize, seed: u64) -> Self {
        TableSpec {
            name: name.into(),
            rows,
            fk_attrs: 0,
            fk_cardinality: 1,
            keyfigures: 10,
            group_attrs: 8,
            filter_attrs: 8,
            status_attrs: 3,
            group_cardinality: 100,
            status_cardinality: 8,
            kf_distinct: (rows / 20).max(64) as u32,
            seed,
        }
    }

    /// Total number of columns.
    pub fn arity(&self) -> usize {
        1 + self.fk_attrs
            + self.keyfigures
            + self.group_attrs
            + self.filter_attrs
            + self.status_attrs
    }

    /// The primary-key (`id`) column.
    pub fn id_col(&self) -> ColumnIdx {
        0
    }

    /// Index of foreign-key column `j`.
    pub fn fk_col(&self, j: usize) -> ColumnIdx {
        debug_assert!(j < self.fk_attrs);
        1 + j
    }

    /// Index of keyfigure column `j`.
    pub fn kf_col(&self, j: usize) -> ColumnIdx {
        debug_assert!(j < self.keyfigures);
        1 + self.fk_attrs + j
    }

    /// Index of group-by column `j`.
    pub fn grp_col(&self, j: usize) -> ColumnIdx {
        debug_assert!(j < self.group_attrs);
        1 + self.fk_attrs + self.keyfigures + j
    }

    /// Index of filter column `j`.
    pub fn flt_col(&self, j: usize) -> ColumnIdx {
        debug_assert!(j < self.filter_attrs);
        1 + self.fk_attrs + self.keyfigures + self.group_attrs + j
    }

    /// Index of status column `j`.
    pub fn st_col(&self, j: usize) -> ColumnIdx {
        debug_assert!(j < self.status_attrs);
        1 + self.fk_attrs + self.keyfigures + self.group_attrs + self.filter_attrs + j
    }

    /// All keyfigure column indexes.
    pub fn kf_cols(&self) -> Vec<ColumnIdx> {
        (0..self.keyfigures).map(|j| self.kf_col(j)).collect()
    }

    /// All group-by column indexes.
    pub fn grp_cols(&self) -> Vec<ColumnIdx> {
        (0..self.group_attrs).map(|j| self.grp_col(j)).collect()
    }

    /// All status column indexes.
    pub fn st_cols(&self) -> Vec<ColumnIdx> {
        (0..self.status_attrs).map(|j| self.st_col(j)).collect()
    }

    /// Build the schema.
    pub fn schema(&self) -> Result<TableSchema> {
        let mut cols = Vec::with_capacity(self.arity());
        cols.push(ColumnDef::new("id", ColumnType::BigInt));
        for j in 0..self.fk_attrs {
            cols.push(ColumnDef::new(format!("fk{j}"), ColumnType::BigInt));
        }
        for j in 0..self.keyfigures {
            cols.push(ColumnDef::new(format!("kf{j}"), ColumnType::Double));
        }
        for j in 0..self.group_attrs {
            cols.push(ColumnDef::new(format!("grp{j}"), ColumnType::Integer));
        }
        for j in 0..self.filter_attrs {
            cols.push(ColumnDef::new(format!("flt{j}"), ColumnType::Integer));
        }
        for j in 0..self.status_attrs {
            cols.push(ColumnDef::new(format!("st{j}"), ColumnType::Integer));
        }
        TableSchema::new(self.name.clone(), cols, vec![0])
    }

    /// Deterministic value of column `col` in row `i`.
    pub fn value(&self, i: u64, col: ColumnIdx) -> Value {
        let h = splitmix64(self.seed ^ i.wrapping_mul(0xA24B_AED4_963E_E407) ^ (col as u64) << 17);
        if col == 0 {
            Value::BigInt(i as i64)
        } else if col < 1 + self.fk_attrs {
            Value::BigInt((h % self.fk_cardinality.max(1) as u64) as i64)
        } else if col < 1 + self.fk_attrs + self.keyfigures {
            // two-decimal doubles: kf_distinct distinct values
            Value::Double((h % self.kf_distinct.max(1) as u64) as f64 / 100.0)
        } else if col < 1 + self.fk_attrs + self.keyfigures + self.group_attrs {
            Value::Int((h % self.group_cardinality.max(1) as u64) as i32)
        } else if col < 1 + self.fk_attrs + self.keyfigures + self.group_attrs + self.filter_attrs {
            Value::Int((h % 10_000) as i32)
        } else {
            Value::Int((h % self.status_cardinality.max(1) as u64) as i32)
        }
    }

    /// Deterministic full row `i`.
    pub fn row(&self, i: u64) -> Vec<Value> {
        (0..self.arity()).map(|c| self.value(i, c)).collect()
    }

    /// Iterator over the initial rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows as u64).map(|i| self.row(i))
    }
}

/// Configuration of a mixed OLAP/OLTP workload.
#[derive(Debug, Clone)]
pub struct MixedWorkloadConfig {
    /// Total number of queries.
    pub queries: usize,
    /// Fraction of aggregation (OLAP) queries.
    pub olap_fraction: f64,
    /// Share of OLTP queries that are inserts.
    pub oltp_insert_share: f64,
    /// Share of OLTP queries that are updates (remainder: point selects).
    pub oltp_update_share: f64,
    /// Probability that an OLAP query has a GROUP BY.
    pub group_by_prob: f64,
    /// Maximum number of aggregates per OLAP query.
    pub max_aggregates: usize,
    /// Probability that an update assigns (almost) every non-key attribute
    /// — the paper's "updated as a whole" tuples.
    pub whole_tuple_update_prob: f64,
    /// When set, updates and point selects target the top `hot` fraction of
    /// the id range (the OLTP region of Figure 8).
    pub hot_fraction: Option<f64>,
    /// When set, each update addresses a contiguous id *range* of this many
    /// rows (within the hot region) instead of a single tuple — the
    /// "update queries addressing 10% of the data" workloads of Figure 8.
    pub update_range_rows: Option<usize>,
    /// Whether updates assign only status attributes (the vertical
    /// partitioning scenarios) instead of arbitrary non-key attributes.
    /// Selects then filter on a status attribute (projecting the key and
    /// that attribute) instead of probing the primary key.
    pub update_status_only: bool,
    /// Rows per insert statement.
    pub rows_per_insert: usize,
    /// RNG seed (query mix and parameters).
    pub seed: u64,
}

impl Default for MixedWorkloadConfig {
    fn default() -> Self {
        MixedWorkloadConfig {
            queries: 500,
            olap_fraction: 0.025,
            oltp_insert_share: 0.4,
            oltp_update_share: 0.4,
            group_by_prob: 0.5,
            max_aggregates: 3,
            whole_tuple_update_prob: 0.1,
            hot_fraction: None,
            update_range_rows: None,
            update_status_only: false,
            rows_per_insert: 1,
            seed: 42,
        }
    }
}

/// Generates mixed workloads against [`TableSpec`] tables.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: SmallRng,
    next_id: u64,
}

impl WorkloadGenerator {
    /// New generator; `next_id` continues after the table's initial rows.
    pub fn new(spec: &TableSpec, seed: u64) -> Self {
        WorkloadGenerator {
            rng: SmallRng::seed_from_u64(seed),
            next_id: spec.rows as u64,
        }
    }

    /// Mixed workload against a single table (Figure 7(a) and the
    /// partitioning experiments).
    pub fn single_table(spec: &TableSpec, cfg: &MixedWorkloadConfig) -> Workload {
        let mut gen = WorkloadGenerator::new(spec, cfg.seed);
        let slots = gen.olap_slots(cfg);
        let queries = slots
            .into_iter()
            .map(|is_olap| {
                if is_olap {
                    gen.olap_query(spec, cfg, None)
                } else {
                    gen.oltp_query(spec, cfg)
                }
            })
            .collect();
        Workload::from_queries(queries)
    }

    /// Mixed workload against a star schema: OLAP queries join the fact
    /// table with the dimension table and group by dimension attributes;
    /// OLTP queries insert into / update the fact table (Figure 7(b)).
    pub fn star(
        fact: &TableSpec,
        dim: &TableSpec,
        fact_fk: ColumnIdx,
        cfg: &MixedWorkloadConfig,
    ) -> Workload {
        let mut gen = WorkloadGenerator::new(fact, cfg.seed);
        let slots = gen.olap_slots(cfg);
        let queries = slots
            .into_iter()
            .map(|is_olap| {
                if is_olap {
                    gen.olap_query(fact, cfg, Some((dim, fact_fk)))
                } else {
                    gen.oltp_query(fact, cfg)
                }
            })
            .collect();
        Workload::from_queries(queries)
    }

    fn olap_slots(&mut self, cfg: &MixedWorkloadConfig) -> Vec<bool> {
        let olap = ((cfg.queries as f64) * cfg.olap_fraction).round() as usize;
        let mut slots = vec![false; cfg.queries];
        for s in slots.iter_mut().take(olap.min(cfg.queries)) {
            *s = true;
        }
        slots.shuffle(&mut self.rng);
        slots
    }

    fn olap_query(
        &mut self,
        spec: &TableSpec,
        cfg: &MixedWorkloadConfig,
        join: Option<(&TableSpec, ColumnIdx)>,
    ) -> Query {
        let n_aggs = self.rng.gen_range(1..=cfg.max_aggregates.max(1));
        let funcs = [
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
        ];
        let aggregates: Vec<Aggregate> = (0..n_aggs)
            .map(|_| Aggregate {
                func: funcs[self.rng.gen_range(0..funcs.len())],
                column: spec.kf_col(self.rng.gen_range(0..spec.keyfigures.max(1))),
            })
            .collect();
        match join {
            None => {
                let group_by = if spec.group_attrs > 0 && self.rng.gen_bool(cfg.group_by_prob) {
                    Some(spec.grp_col(self.rng.gen_range(0..spec.group_attrs)))
                } else {
                    None
                };
                Query::Aggregate(AggregateQuery {
                    table: spec.name.clone(),
                    aggregates,
                    group_by,
                    filter: Vec::new(),
                    join: None,
                })
            }
            Some((dim, fact_fk)) => {
                let group_by_dim = if dim.group_attrs > 0 && self.rng.gen_bool(cfg.group_by_prob) {
                    Some(dim.grp_col(self.rng.gen_range(0..dim.group_attrs)))
                } else {
                    None
                };
                Query::Aggregate(AggregateQuery {
                    table: spec.name.clone(),
                    aggregates,
                    group_by: None,
                    filter: Vec::new(),
                    join: Some(JoinSpec {
                        dim_table: dim.name.clone(),
                        fact_fk,
                        dim_pk: dim.id_col(),
                        group_by_dim,
                    }),
                })
            }
        }
    }

    fn oltp_query(&mut self, spec: &TableSpec, cfg: &MixedWorkloadConfig) -> Query {
        let r: f64 = self.rng.gen();
        if r < cfg.oltp_insert_share {
            self.insert_query(spec, cfg)
        } else if r < cfg.oltp_insert_share + cfg.oltp_update_share {
            self.update_query(spec, cfg)
        } else {
            self.point_select(spec, cfg)
        }
    }

    fn insert_query(&mut self, spec: &TableSpec, cfg: &MixedWorkloadConfig) -> Query {
        let rows: Vec<Vec<Value>> = (0..cfg.rows_per_insert.max(1))
            .map(|_| {
                let id = self.next_id;
                self.next_id += 1;
                spec.row(id)
            })
            .collect();
        Query::Insert(InsertQuery {
            table: spec.name.clone(),
            rows,
        })
    }

    fn target_id(&mut self, spec: &TableSpec, cfg: &MixedWorkloadConfig) -> i64 {
        let n = spec.rows as f64;
        match cfg.hot_fraction {
            Some(hot) => {
                let lo = (n * (1.0 - hot.clamp(0.0, 1.0))) as i64;
                self.rng.gen_range(lo..spec.rows as i64)
            }
            None => self.rng.gen_range(0..spec.rows as i64),
        }
    }

    fn update_query(&mut self, spec: &TableSpec, cfg: &MixedWorkloadConfig) -> Query {
        let id = self.target_id(spec, cfg);
        let whole = self.rng.gen_bool(cfg.whole_tuple_update_prob);
        let candidate_cols: Vec<ColumnIdx> = if whole {
            // Everything except the key and foreign keys.
            (1 + spec.fk_attrs..spec.arity()).collect()
        } else if cfg.update_status_only && spec.status_attrs > 0 {
            vec![spec.st_col(self.rng.gen_range(0..spec.status_attrs))]
        } else {
            // One arbitrary non-key, non-fk attribute.
            let lo = 1 + spec.fk_attrs;
            vec![self.rng.gen_range(lo..spec.arity())]
        };
        let sets: Vec<(ColumnIdx, Value)> = candidate_cols
            .into_iter()
            .map(|c| {
                let salt = self.rng.gen::<u32>() as u64 % spec.rows.max(1) as u64;
                match spec.value(salt, c) {
                    // Keyfigure updates write genuinely new values (a fresh
                    // price/quantity), growing the column store's dictionary
                    // tail — the delta pressure real updates create.
                    Value::Double(_) => (c, Value::Double(self.rng.gen::<u32>() as f64 / 977.0)),
                    // Flag-like integer attributes stay within their domain.
                    v => (c, v),
                }
            })
            .collect();
        let filter = match cfg.update_range_rows {
            None => vec![ColRange::eq(spec.id_col(), Value::BigInt(id))],
            Some(k) => {
                // Contiguous range of k ids, clamped to the table.
                let k = k.max(1) as i64;
                let lo = id.min(spec.rows as i64 - k).max(0);
                vec![ColRange::between(
                    spec.id_col(),
                    Value::BigInt(lo),
                    Value::BigInt(lo + k - 1),
                )]
            }
        };
        Query::Update(UpdateQuery {
            table: spec.name.clone(),
            sets,
            filter,
        })
    }

    fn point_select(&mut self, spec: &TableSpec, cfg: &MixedWorkloadConfig) -> Query {
        if cfg.update_status_only && spec.status_attrs > 0 {
            // The vertical-partitioning scenarios: selections filter on a
            // status attribute and project the key plus that attribute.
            let col = spec.st_col(self.rng.gen_range(0..spec.status_attrs));
            let v = self.rng.gen_range(0..spec.status_cardinality.max(1)) as i32;
            return Query::Select(SelectQuery {
                table: spec.name.clone(),
                columns: Some(vec![spec.id_col(), col]),
                filter: vec![ColRange::eq(col, Value::Int(v))],
            });
        }
        let id = self.target_id(spec, cfg);
        Query::Select(SelectQuery {
            table: spec.name.clone(),
            columns: None,
            filter: vec![ColRange::eq(spec.id_col(), Value::BigInt(id))],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryKind;

    fn spec() -> TableSpec {
        TableSpec::paper_wide("w", 1000, 7)
    }

    #[test]
    fn paper_wide_has_30_attributes() {
        let s = spec();
        assert_eq!(s.arity(), 30);
        let schema = s.schema().unwrap();
        assert_eq!(schema.arity(), 30);
        assert_eq!(schema.primary_key, vec![0]);
        assert_eq!(schema.columns[s.kf_col(0)].ty, ColumnType::Double);
        assert_eq!(schema.columns[s.grp_col(0)].ty, ColumnType::Integer);
    }

    #[test]
    fn rows_are_deterministic() {
        let s = spec();
        assert_eq!(s.row(5), s.row(5));
        assert_ne!(s.row(5), s.row(6));
        let other = TableSpec { seed: 8, ..spec() };
        assert_ne!(s.row(5)[s.kf_col(0)], other.row(5)[other.kf_col(0)]);
        // ids are stable regardless of seed
        assert_eq!(s.row(5)[0], Value::BigInt(5));
    }

    #[test]
    fn value_domains() {
        let s = spec();
        for i in 0..200u64 {
            match s.value(i, s.grp_col(0)) {
                Value::Int(v) => assert!((0..100).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
            match s.value(i, s.st_col(0)) {
                Value::Int(v) => assert!((0..8).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
            match s.value(i, s.kf_col(3)) {
                Value::Double(v) => assert!((0.0..1000.0).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn workload_olap_fraction_matches_config() {
        let s = spec();
        let cfg = MixedWorkloadConfig {
            queries: 200,
            olap_fraction: 0.05,
            ..Default::default()
        };
        let w = WorkloadGenerator::single_table(&s, &cfg);
        assert_eq!(w.len(), 200);
        assert!((w.olap_fraction() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn workload_is_seed_deterministic() {
        let s = spec();
        let cfg = MixedWorkloadConfig {
            queries: 100,
            ..Default::default()
        };
        let a = WorkloadGenerator::single_table(&s, &cfg);
        let b = WorkloadGenerator::single_table(&s, &cfg);
        assert_eq!(a, b);
        let c = WorkloadGenerator::single_table(&s, &MixedWorkloadConfig { seed: 43, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn inserts_use_fresh_ids() {
        let s = spec();
        let cfg = MixedWorkloadConfig {
            queries: 50,
            olap_fraction: 0.0,
            oltp_insert_share: 1.0,
            oltp_update_share: 0.0,
            ..Default::default()
        };
        let w = WorkloadGenerator::single_table(&s, &cfg);
        let mut ids = Vec::new();
        for q in &w.queries {
            if let Query::Insert(ins) = q {
                for row in &ins.rows {
                    ids.push(row[0].as_i64().unwrap());
                }
            }
        }
        assert_eq!(ids.len(), 50);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "ids must be unique");
        assert!(
            ids.iter().all(|&i| i >= 1000),
            "ids continue after initial rows"
        );
    }

    #[test]
    fn hot_fraction_confines_updates() {
        let s = spec();
        let cfg = MixedWorkloadConfig {
            queries: 100,
            olap_fraction: 0.0,
            oltp_insert_share: 0.0,
            oltp_update_share: 1.0,
            hot_fraction: Some(0.1),
            whole_tuple_update_prob: 0.0,
            ..Default::default()
        };
        let w = WorkloadGenerator::single_table(&s, &cfg);
        for q in &w.queries {
            if let Query::Update(u) = q {
                let id = u.filter[0].as_eq().unwrap().as_i64().unwrap();
                assert!(id >= 900, "update id {id} outside hot region");
            }
        }
    }

    #[test]
    fn star_workload_contains_joins() {
        let fact = TableSpec {
            name: "fact".into(),
            rows: 1000,
            fk_attrs: 1,
            fk_cardinality: 100,
            keyfigures: 4,
            group_attrs: 0,
            filter_attrs: 3,
            status_attrs: 1,
            group_cardinality: 10,
            status_cardinality: 5,
            kf_distinct: 100_000,
            seed: 1,
        };
        let dim = TableSpec {
            name: "dim".into(),
            rows: 100,
            fk_attrs: 0,
            fk_cardinality: 1,
            keyfigures: 0,
            group_attrs: 3,
            filter_attrs: 2,
            status_attrs: 0,
            group_cardinality: 10,
            status_cardinality: 1,
            kf_distinct: 100_000,
            seed: 2,
        };
        let cfg = MixedWorkloadConfig {
            queries: 100,
            olap_fraction: 0.2,
            ..Default::default()
        };
        let w = WorkloadGenerator::star(&fact, &dim, fact.fk_col(0), &cfg);
        let joins = w
            .queries
            .iter()
            .filter(|q| q.kind() == QueryKind::AggregationJoin)
            .count();
        assert_eq!(joins, 20);
        for q in &w.queries {
            if let Query::Aggregate(a) = q {
                let j = a.join.as_ref().expect("star OLAP queries join");
                assert_eq!(j.dim_table, "dim");
                assert_eq!(j.fact_fk, fact.fk_col(0));
            }
        }
    }

    #[test]
    fn status_only_updates_touch_status_columns() {
        let s = spec();
        let cfg = MixedWorkloadConfig {
            queries: 60,
            olap_fraction: 0.0,
            oltp_insert_share: 0.0,
            oltp_update_share: 1.0,
            whole_tuple_update_prob: 0.0,
            update_status_only: true,
            ..Default::default()
        };
        let w = WorkloadGenerator::single_table(&s, &cfg);
        let st: Vec<ColumnIdx> = s.st_cols();
        for q in &w.queries {
            if let Query::Update(u) = q {
                for (col, _) in &u.sets {
                    assert!(st.contains(col), "column {col} is not a status attribute");
                }
            }
        }
    }
}
