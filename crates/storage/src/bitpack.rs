//! Bit-packed vectors of dictionary codes, laid out for word-parallel scans.
//!
//! Column-store code vectors hold small integers (dictionary codes), so
//! storing them in a handful of bits instead of full 32-bit words is the
//! classic column-store compression the paper's `f_compression` adjustment
//! reacts to. The width grows on demand: when a push would not fit, the
//! vector repacks itself at a wider width (amortized O(1) per push).
//!
//! # Layout
//!
//! A `width`-bit code is stored in a **field** of `width + 1` bits — the
//! value in the low `width` bits plus one always-zero *delimiter* bit on
//! top — and `64 / (width + 1)` fields are packed per `u64` word. Codes
//! never straddle word boundaries (the few bits that do not fit a whole
//! field are left unused at the top of each word). This trades a little
//! compression (e.g. 16 instead of 13 bits per code at width 13) for scan
//! kernels that operate on whole words:
//!
//! * [`BitPackedVec::decode_into`] unpacks a word's worth of codes with
//!   constant shift/mask sequences (per-width monomorphized, so the
//!   compiler unrolls and vectorizes them);
//! * [`BitPackedVec::match_interval_into`] evaluates a code-domain range
//!   predicate **without decoding at all**: the delimiter bit makes the
//!   packed word a SIMD-within-a-register vector, so one 64-bit subtract
//!   range-tests every code in the word at once (the BitWeaving-H idea of
//!   Li & Patel, SIGMOD 2013).
//!
//! [`BLOCK`] is the block size the batched scan pipeline above this module
//! uses.

/// Number of codes the batched scan pipeline decodes per block.
///
/// 1024 codes keep the decode buffer (4 KiB) comfortably inside L1 while
/// amortizing per-block bookkeeping; it is also a multiple of 64, so one
/// block maps to exactly 16 selection-vector words.
pub const BLOCK: usize = 1024;

/// A growable vector of `u32` values stored at a fixed bit width.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitPackedVec {
    words: Vec<u64>,
    /// Bits per entry, 0..=32. Width 0 is valid and means "all values are 0".
    width: u8,
    /// Fields (codes) per word: `64 / (width + 1)`. 0 when `width == 0`.
    per_word: u8,
    /// Round-up reciprocal for dividing by `per_word` without a `div`
    /// instruction: `u64::MAX / per_word + 1`; 0 when `per_word <= 1`.
    div_magic: u64,
    len: usize,
}

/// Number of bits needed to represent `max_value`.
pub fn bits_for(max_value: u32) -> u8 {
    (32 - max_value.leading_zeros()) as u8
}

/// Fields per word at `width` bits per code.
#[inline]
fn fields_per_word(width: u8) -> usize {
    64 / (width as usize + 1)
}

#[inline]
fn mask_of(width: usize) -> u64 {
    if width == 0 {
        0
    } else if width >= 32 {
        u32::MAX as u64
    } else {
        (1u64 << width) - 1
    }
}

/// Unpack every field of each word in `words` into `out`
/// (`out.len() == words.len() * K` where `K = 64 / (W + 1)`).
///
/// With `W` a const parameter the inner loop fully unrolls into constant
/// shift/mask pairs per field and the outer loop auto-vectorizes.
#[inline]
fn unpack_words<const W: usize>(words: &[u64], out: &mut [u32]) {
    let k = 64 / (W + 1);
    let mask = mask_of(W);
    debug_assert_eq!(out.len(), words.len() * k);
    for (w, chunk) in words.iter().zip(out.chunks_exact_mut(k)) {
        for (f, slot) in chunk.iter_mut().enumerate() {
            *slot = ((w >> (f * (W + 1))) & mask) as u32;
        }
    }
}

/// Word-parallel range test: for each word in `words`, produce one match
/// bit per field (`c.wrapping_sub(lo) < span`, i.e. `lo <= c < hi` for
/// `span = hi - lo`), pushed LSB-first through `emit(k_bits, k)`.
///
/// The delimiter bit on top of every field turns the subtraction into `K`
/// independent `width+1`-bit subtractions: setting the delimiter and
/// subtracting `lo` leaves the delimiter set exactly in fields whose code
/// is `>= lo` (no borrow), and likewise for `hi` — three word ops
/// range-test all `K` codes at once, never decoding them.
#[inline]
fn swar_match_words<const W: usize>(
    words: &[u64],
    lo: u64,
    hi: u64,
    mut emit: impl FnMut(u64, usize),
) {
    debug_assert!(
        lo <= 1 << W && hi <= 1 << W,
        "SWAR bounds must fit the field"
    );
    let k = 64 / (W + 1);
    let f = W + 1;
    let mut delim = 0u64;
    let mut lo_v = 0u64;
    let mut hi_v = 0u64;
    for i in 0..k {
        delim |= 1u64 << (i * f + W);
        lo_v |= lo << (i * f);
        hi_v |= hi << (i * f);
    }
    for &w in words {
        let ge = (w | delim).wrapping_sub(lo_v) & delim;
        let lt = !((w | delim).wrapping_sub(hi_v)) & delim;
        let m = (ge & lt) >> W;
        // Gather the K match bits (at stride `f`) into the low K bits.
        let mut bits = 0u64;
        for i in 0..k {
            bits |= ((m >> (i * f)) & 1) << i;
        }
        emit(bits, k);
    }
}

macro_rules! width_dispatch {
    ($width:expr, $f:ident) => {
        match $width {
            1 => $f::<1>,
            2 => $f::<2>,
            3 => $f::<3>,
            4 => $f::<4>,
            5 => $f::<5>,
            6 => $f::<6>,
            7 => $f::<7>,
            8 => $f::<8>,
            9 => $f::<9>,
            10 => $f::<10>,
            11 => $f::<11>,
            12 => $f::<12>,
            13 => $f::<13>,
            14 => $f::<14>,
            15 => $f::<15>,
            16 => $f::<16>,
            17 => $f::<17>,
            18 => $f::<18>,
            19 => $f::<19>,
            20 => $f::<20>,
            21 => $f::<21>,
            22 => $f::<22>,
            23 => $f::<23>,
            24 => $f::<24>,
            25 => $f::<25>,
            26 => $f::<26>,
            27 => $f::<27>,
            28 => $f::<28>,
            29 => $f::<29>,
            30 => $f::<30>,
            31 => $f::<31>,
            32 => $f::<32>,
            other => unreachable!("bit width {other} out of range"),
        }
    };
}

impl BitPackedVec {
    /// Empty vector with zero width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty vector pre-sized for `capacity` entries of `width` bits.
    pub fn with_capacity(width: u8, capacity: usize) -> Self {
        assert!(width <= 32, "code width above 32 bits");
        let mut v = BitPackedVec::new();
        v.set_width(width);
        let words = if width == 0 {
            0
        } else {
            capacity.div_ceil(fields_per_word(width))
        };
        v.words = Vec::with_capacity(words);
        v
    }

    fn set_width(&mut self, width: u8) {
        self.width = width;
        if width == 0 {
            self.per_word = 0;
            self.div_magic = 0;
        } else {
            let k = fields_per_word(width) as u64;
            self.per_word = k as u8;
            // Round-up reciprocal: exact for all dividends < 2^32 (row
            // indexes are u32). Undefined (and unused) for k == 1.
            self.div_magic = if k > 1 { u64::MAX / k + 1 } else { 0 };
        }
    }

    /// Word index and field shift of entry `idx`.
    #[inline]
    fn slot(&self, idx: usize) -> (usize, u32) {
        let k = self.per_word as usize;
        debug_assert!(idx < (1usize << 32), "row index beyond fast-division range");
        let word = if k == 1 {
            idx
        } else {
            ((idx as u128 * self.div_magic as u128) >> 64) as usize
        };
        let field = idx - word * k;
        (word, (field * (self.width as usize + 1)) as u32)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bits-per-entry.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Heap bytes occupied by the packed representation.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    fn mask(width: u8) -> u64 {
        mask_of(width as usize)
    }

    /// Append a value, widening the representation if required.
    pub fn push(&mut self, value: u32) {
        let needed = bits_for(value);
        if needed > self.width {
            self.repack(needed);
        }
        if self.width == 0 {
            // All stored values are zero; nothing to write.
            self.len += 1;
            return;
        }
        let (word, shift) = self.slot(self.len);
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= (value as u64) << shift;
        self.len += 1;
    }

    /// Read the entry at `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        assert!(
            idx < self.len,
            "BitPackedVec index {idx} out of bounds (len {})",
            self.len
        );
        if self.width == 0 {
            return 0;
        }
        let (word, shift) = self.slot(idx);
        ((self.words[word] >> shift) & Self::mask(self.width)) as u32
    }

    /// Overwrite the entry at `idx`, widening if required.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: u32) {
        assert!(
            idx < self.len,
            "BitPackedVec index {idx} out of bounds (len {})",
            self.len
        );
        let needed = bits_for(value);
        if needed > self.width {
            self.repack(needed);
        }
        if self.width == 0 {
            return; // value must be 0 to have width 0 after repack
        }
        let (word, shift) = self.slot(idx);
        let mask = Self::mask(self.width);
        self.words[word] &= !(mask << shift);
        self.words[word] |= (value as u64) << shift;
    }

    /// Re-encode every entry at `new_width` bits. O(len).
    pub fn repack(&mut self, new_width: u8) {
        assert!(new_width <= 32, "code width above 32 bits");
        assert!(new_width >= self.width, "repack must not narrow the width");
        if new_width == self.width {
            return;
        }
        let mut wider = BitPackedVec::with_capacity(new_width, self.len);
        for i in 0..self.len {
            let v = self.get(i);
            // Inline push without the widen check: new_width is sufficient.
            let (word, shift) = wider.slot(wider.len);
            if word >= wider.words.len() {
                wider.words.push(0);
            }
            wider.words[word] |= (v as u64) << shift;
            wider.len += 1;
        }
        *self = wider;
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The packed words backing this vector, in layout order.
    ///
    /// Together with [`BitPackedVec::width`] and [`BitPackedVec::len`] this
    /// is the vector's complete serialized form; feed the same three values
    /// to [`BitPackedVec::from_raw_parts`] to reconstruct it bit-for-bit.
    /// The segment file format persists code vectors this way.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a vector from its serialized parts (see
    /// [`BitPackedVec::words`]).
    ///
    /// `words` must use the delimiter-aligned layout this module produces:
    /// `64 / (width + 1)` fields per word, delimiter bits zero, unused top
    /// bits zero. The derived fields (`per_word`, the division magic) are
    /// recomputed, so only the three persisted values are needed.
    ///
    /// ```
    /// use hsd_storage::BitPackedVec;
    /// let v: BitPackedVec = [3u32, 1, 4, 1, 5].iter().copied().collect();
    /// let rebuilt =
    ///     BitPackedVec::from_raw_parts(v.words().to_vec(), v.width(), v.len());
    /// assert_eq!(rebuilt, v);
    /// ```
    ///
    /// # Panics
    /// Panics if `width > 32` or `words` is not exactly the number of words
    /// `len` entries occupy at `width` bits.
    pub fn from_raw_parts(words: Vec<u64>, width: u8, len: usize) -> Self {
        assert!(width <= 32, "code width above 32 bits");
        let expect_words = if width == 0 {
            0
        } else {
            len.div_ceil(fields_per_word(width))
        };
        assert_eq!(
            words.len(),
            expect_words,
            "word count does not match width {width} / len {len}"
        );
        let mut v = BitPackedVec::new();
        v.set_width(width);
        v.words = words;
        v.len = len;
        v
    }

    /// Decode the run `[start, start + out.len())` into `out` using
    /// word-level unpacking.
    ///
    /// Whole packed words go through a per-width monomorphized kernel
    /// (`unpack_words`) whose shifts are compile-time constants — each
    /// word is loaded once and unpacked with straight-line shift/mask code
    /// the compiler vectorizes. The few codes before/after the word-aligned
    /// middle use the scalar field extraction. Unlike [`BitPackedVec::get`]
    /// there is no per-element bounds assertion or index division.
    ///
    /// # Panics
    /// Panics if `start + out.len() > len`.
    pub fn decode_into(&self, start: usize, out: &mut [u32]) {
        let n = out.len();
        assert!(
            start + n <= self.len,
            "decode_into range {start}..{} out of bounds (len {})",
            start + n,
            self.len
        );
        if self.width == 0 || n == 0 {
            out.fill(0);
            return;
        }
        let width = self.width as usize;
        let k = self.per_word as usize;
        let mask = Self::mask(self.width);
        let field_bits = width + 1;
        // Scalar prologue up to the next word boundary.
        let (mut word, _) = self.slot(start);
        let lead = ((k - (start - word * k)) % k).min(n);
        for (i, slot) in out[..lead].iter_mut().enumerate() {
            let (w, shift) = self.slot(start + i);
            *slot = ((self.words[w] >> shift) & mask) as u32;
        }
        if lead > 0 {
            word += 1;
        }
        // Word-aligned middle through the per-width kernel.
        let mid_words = (n - lead) / k;
        if mid_words > 0 {
            let kernel = width_dispatch!(width, unpack_words);
            kernel(
                &self.words[word..word + mid_words],
                &mut out[lead..lead + mid_words * k],
            );
            word += mid_words;
        }
        // Scalar tail inside the final partial word.
        let done = lead + mid_words * k;
        for (f, slot) in out[done..].iter_mut().enumerate() {
            *slot = ((self.words[word] >> (f * field_bits)) & mask) as u32;
        }
    }

    /// Write match bits for the half-open code interval `[lo, hi)` over the
    /// run `[start, start + count)` into `out` (one bit per code, 64 codes
    /// per word, LSB first; bits past `count` in the final word are zero).
    ///
    /// The predicate runs word-parallel over the packed words
    /// (`swar_match_words`): codes are never decoded, each packed word is
    /// range-tested against the whole interval with three 64-bit ALU ops.
    ///
    /// # Panics
    /// Panics if `start` is not 64-aligned, `out` is shorter than
    /// `count.div_ceil(64)` words, or the run exceeds the vector.
    pub fn match_interval_into(
        &self,
        start: usize,
        count: usize,
        lo: u32,
        hi: u32,
        out: &mut [u64],
    ) {
        assert_eq!(
            start % 64,
            0,
            "match_interval_into start must be 64-aligned"
        );
        assert!(
            start + count <= self.len,
            "match_interval_into range {start}..{} out of bounds (len {})",
            start + count,
            self.len
        );
        let out_words = count.div_ceil(64);
        assert!(out.len() >= out_words, "match bitmap too short");
        out[..out_words].fill(0);
        if count == 0 {
            return;
        }
        if self.width == 0 {
            // Every code is 0: all rows match iff 0 ∈ [lo, hi).
            if lo == 0 && hi > 0 {
                for (i, w) in out[..out_words].iter_mut().enumerate() {
                    let bits_here = (count - i * 64).min(64);
                    *w = if bits_here == 64 {
                        u64::MAX
                    } else {
                        (1u64 << bits_here) - 1
                    };
                }
            }
            return;
        }
        let width = self.width as usize;
        let k = self.per_word as usize;
        let field_bits = width + 1;
        let mask = Self::mask(self.width);
        // Every stored code is < 2^width, so clamping both bounds to
        // 2^width preserves the predicate while keeping them representable
        // in a width+1-bit field (the SWAR kernel's requirement).
        let cap = 1u64 << width;
        let lo = (lo as u64).min(cap);
        let hi = (hi as u64).min(cap);
        let span = hi - lo;
        // Accumulator packing K match bits per packed word into 64-bit
        // output words (K rarely divides 64 evenly).
        let mut acc = 0u64;
        let mut acc_bits = 0usize;
        let mut o = 0usize;
        let mut flush = |bits: u64, n_bits: usize, acc: &mut u64, acc_bits: &mut usize| {
            *acc |= bits << *acc_bits;
            *acc_bits += n_bits;
            if *acc_bits >= 64 {
                out[o] = *acc;
                o += 1;
                *acc_bits -= 64;
                *acc = if *acc_bits == 0 {
                    0
                } else {
                    bits >> (n_bits - *acc_bits)
                };
            }
        };
        // Scalar prologue: fields of the first (possibly partial) word.
        let (first_word, _) = self.slot(start);
        let lead = ((k - (start - first_word * k)) % k).min(count);
        for i in 0..lead {
            let (w, shift) = self.slot(start + i);
            let c = (self.words[w] >> shift) & mask;
            flush(
                (c.wrapping_sub(lo) < span) as u64,
                1,
                &mut acc,
                &mut acc_bits,
            );
        }
        let mut word = first_word + usize::from(lead > 0);
        // Word-parallel middle.
        let mid_words = (count - lead) / k;
        if mid_words > 0 {
            let kernel = width_dispatch!(width, swar_match_words);
            kernel(
                &self.words[word..word + mid_words],
                lo,
                hi,
                |bits, n_bits| flush(bits, n_bits, &mut acc, &mut acc_bits),
            );
            word += mid_words;
        }
        // Scalar tail inside the final partial word.
        for f in 0..count - lead - mid_words * k {
            let c = (self.words[word] >> (f * field_bits)) & mask;
            flush(
                (c.wrapping_sub(lo) < span) as u64,
                1,
                &mut acc,
                &mut acc_bits,
            );
        }
        if acc_bits > 0 {
            out[o] = acc;
        }
    }
}

impl FromIterator<u32> for BitPackedVec {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut v = BitPackedVec::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u32::MAX), 32);
    }

    #[test]
    fn push_get_round_trip() {
        let vals = [0u32, 1, 7, 3, 200, 5, 65_535, 12];
        let v: BitPackedVec = vals.iter().copied().collect();
        assert_eq!(v.len(), vals.len());
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(v.get(i), x, "index {i}");
        }
    }

    #[test]
    fn zero_width_stores_zeros() {
        let mut v = BitPackedVec::new();
        for _ in 0..100 {
            v.push(0);
        }
        assert_eq!(v.width(), 0);
        assert_eq!(v.len(), 100);
        assert_eq!(v.get(99), 0);
        assert!(v.heap_bytes() == 0);
    }

    #[test]
    fn widening_preserves_existing_entries() {
        let mut v = BitPackedVec::new();
        for i in 0..50u32 {
            v.push(i % 4);
        }
        assert_eq!(v.width(), 2);
        v.push(1_000_000);
        assert_eq!(v.width(), bits_for(1_000_000));
        for i in 0..50usize {
            assert_eq!(v.get(i), (i % 4) as u32);
        }
        assert_eq!(v.get(50), 1_000_000);
    }

    #[test]
    fn set_updates_in_place() {
        let mut v: BitPackedVec = (0..100u32).collect();
        v.set(3, 42);
        assert_eq!(v.get(3), 42);
        assert_eq!(v.get(2), 2);
        assert_eq!(v.get(4), 4);
        // widening set
        v.set(10, u32::MAX);
        assert_eq!(v.get(10), u32::MAX);
        assert_eq!(v.get(9), 9);
        assert_eq!(v.get(11), 11);
    }

    #[test]
    fn entries_at_every_field_phase() {
        // Width 7 packs 8 codes per word; exercise every in-word position
        // plus repeated word crossings.
        let vals: Vec<u32> = (0..200).map(|i| (i * 13) % 128).collect();
        let v: BitPackedVec = vals.iter().copied().collect();
        assert_eq!(v.width(), 7);
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(v.get(i), x, "index {i}");
        }
        let mut w = v.clone();
        for (i, &x) in vals.iter().enumerate().rev() {
            w.set(i, 127 - x);
        }
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(w.get(i), 127 - x, "index {i}");
        }
    }

    #[test]
    fn width_32_round_trip() {
        let vals = [u32::MAX, 0, 123_456_789, u32::MAX - 1];
        let v: BitPackedVec = vals.iter().copied().collect();
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(v.get(i), x);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v: BitPackedVec = [1u32, 2].iter().copied().collect();
        v.get(2);
    }

    #[test]
    fn iter_matches_get() {
        let vals: Vec<u32> = (0..77).map(|i| i * 3 % 23).collect();
        let v: BitPackedVec = vals.iter().copied().collect();
        let collected: Vec<u32> = v.iter().collect();
        assert_eq!(collected, vals);
    }

    fn domain_vals(domain: u64, n: u64) -> Vec<u32> {
        (0..n)
            .map(|i| ((i.wrapping_mul(0x9E37_79B9)) % (domain + 1)) as u32)
            .collect()
    }

    #[test]
    fn decode_into_matches_get() {
        // Exercise a spread of widths: tiny, mid, and full 32-bit (one code
        // per word), including non-power-of-two fields-per-word counts.
        for domain in [
            1u64,
            2,
            3,
            5,
            7,
            11,
            100,
            1 << 15,
            (1 << 21) - 1,
            u32::MAX as u64 - 1,
        ] {
            let vals = domain_vals(domain, 2500);
            let v: BitPackedVec = vals.iter().copied().collect();
            let mut buf = vec![0u32; vals.len()];
            v.decode_into(0, &mut buf);
            assert_eq!(buf, vals, "domain {domain}");
            // Unaligned starts and short runs.
            for (start, n) in [(0usize, 1usize), (1, 63), (63, 65), (100, 1000), (2499, 1)] {
                let mut buf = vec![0u32; n];
                v.decode_into(start, &mut buf);
                assert_eq!(
                    buf,
                    &vals[start..start + n],
                    "domain {domain} at {start}+{n}"
                );
            }
        }
    }

    #[test]
    fn decode_into_zero_width_and_empty() {
        let mut v = BitPackedVec::new();
        for _ in 0..100 {
            v.push(0);
        }
        let mut buf = vec![9u32; 50];
        v.decode_into(25, &mut buf);
        assert!(buf.iter().all(|&x| x == 0));
        let empty = BitPackedVec::new();
        let mut nothing: [u32; 0] = [];
        empty.decode_into(0, &mut nothing);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn decode_into_out_of_bounds_panics() {
        let v: BitPackedVec = [1u32, 2, 3].iter().copied().collect();
        let mut buf = [0u32; 2];
        v.decode_into(2, &mut buf);
    }

    #[test]
    fn match_interval_agrees_with_scalar() {
        for domain in [1u64, 3, 7, 100, 8191, (1 << 20) - 1] {
            let vals = domain_vals(domain, 1500);
            let v: BitPackedVec = vals.iter().copied().collect();
            let cases = [
                (0u32, 1u32),
                (0, domain as u32 + 1),
                (domain as u32 / 3, (2 * domain as u32 / 3).max(1)),
                (5, 5), // empty interval
            ];
            for (lo, hi) in cases {
                for (start, count) in [(0usize, vals.len()), (64, 1000), (128, 1), (64, 0)] {
                    let mut out = vec![u64::MAX; count.div_ceil(64).max(1)];
                    v.match_interval_into(start, count, lo, hi, &mut out);
                    for (j, idx) in (start..start + count).enumerate() {
                        let expect = vals[idx] >= lo && vals[idx] < hi;
                        let got = out[j / 64] >> (j % 64) & 1 == 1;
                        assert_eq!(
                            got, expect,
                            "domain {domain} [{lo},{hi}) idx {idx} (start {start})"
                        );
                    }
                    // Bits past `count` stay zero.
                    if count > 0 && count % 64 != 0 {
                        assert_eq!(out[(count - 1) / 64] >> (count % 64), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn match_interval_zero_width() {
        let mut v = BitPackedVec::new();
        for _ in 0..130 {
            v.push(0);
        }
        let mut out = vec![0u64; 3];
        v.match_interval_into(0, 130, 0, 1, &mut out);
        assert_eq!(out[0], u64::MAX);
        assert_eq!(out[1], u64::MAX);
        assert_eq!(out[2], 0b11);
        v.match_interval_into(0, 130, 1, 2, &mut out);
        assert_eq!(&out[..3], &[0, 0, 0]);
    }

    #[test]
    fn layout_uses_field_alignment() {
        // Width 13 → 14-bit fields → 4 codes per word: 1000 codes need 250
        // words, not ceil(1000 * 13 / 64) = 204.
        let v: BitPackedVec = (0..1000u32).map(|i| i * 8).collect();
        assert_eq!(v.width(), 13);
        assert!(v.heap_bytes() >= 250 * 8);
    }
}
